// Parallel deterministic simulation: shard the DES by node/filer and run
// the shards on worker threads under conservative synchronization, while
// keeping every byte of output identical to a single-thread run.
//
// Model (DESIGN.md §17):
//
//   - A SimShard owns one SimEnvironment (clock + event queue) and one
//     MetricsRegistry. Everything simulated on a shard — volumes, filers,
//     drives, links, jobs — is built against that environment and records
//     into that registry, so shard execution touches no shared mutable
//     state.
//   - Shards interact only through ShardedSimEnvironment::PostAt: a
//     cross-shard schedule that must arrive at least `lookahead(src, dst)`
//     after the sender's clock. Lookahead edges are declared with
//     Connect(); for simulated networks the natural lookahead is the
//     link's propagation delay (NetLink::BindShards).
//   - The coordinator runs barrier-synchronized rounds. At a barrier it
//     drains every mailbox (sorted by (when, source shard, seq) — the
//     deterministic merge order), computes each shard's conservative
//     bound, and dispatches runnable shards to the worker pool. A shard
//     granted bound B processes exactly the events with timestamp < B.
//
// Conservative bound: let E(t) be shard t's next event timestamp and relax
//   act(t) = min(E(t), min over edges (u -> t) of act(u) + lookahead(u, t))
// to a fixpoint; then bound(s) = min over edges (t -> s) of
// act(t) + lookahead(t, s). Any message t can still send to s arrives at
// or after act(t) + lookahead(t, s) >= bound(s), so events below the bound
// can never be preempted — execution order is independent of the worker
// count, which is the determinism proof in one sentence. Lookahead >= 1 us
// on every edge guarantees progress (the globally minimal event is always
// below its shard's bound).
#ifndef BKUP_SIM_SHARD_H_
#define BKUP_SIM_SHARD_H_

#include <coroutine>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/environment.h"
#include "src/sim/task.h"
#include "src/util/units.h"

namespace bkup {

class ShardedSimEnvironment;

// Activates a shard's environment and metrics registry on the current
// thread for the scope's lifetime. Scenario builders hold one while
// constructing a shard's components (so cached metric handles resolve into
// the shard's private registry); shard workers hold one while executing a
// round (so Active(), the log clock and lazy metric lookups all land on
// the shard).
class ShardBinding {
 public:
  explicit ShardBinding(class SimShard* shard);

 private:
  SimEnvironment::ScopedActivate activate_;
  ScopedMetricsRegistry metrics_;
};

class SimShard {
 public:
  SimShard(const SimShard&) = delete;
  SimShard& operator=(const SimShard&) = delete;

  int id() const { return id_; }
  SimEnvironment& env() { return env_; }
  const SimEnvironment& env() const { return env_; }
  SimTime now() const { return env_.now(); }

  // The shard-private metric sink. Thread-safe by partition: only the
  // worker running this shard (or the builder holding a ShardBinding)
  // touches it.
  MetricsRegistry& metrics() { return metrics_; }

  // Binds this shard to the current thread; see ShardBinding.
  ShardBinding Bind() { return ShardBinding(this); }

  // Convenience: spawn a task onto this shard at build time.
  void Spawn(Task task) { env_.Spawn(std::move(task)); }

 private:
  friend class ShardedSimEnvironment;
  explicit SimShard(int id) : id_(id) {}

  struct Mail {
    SimTime when;
    int src;
    uint64_t seq;  // sender-local cross-shard sequence number
    std::coroutine_handle<> handle;
  };

  int id_;
  SimEnvironment env_;
  MetricsRegistry metrics_;
  // Cross-shard deliveries parked until the next barrier. Appended under
  // the mutex by any worker; drained (sorted) by the coordinator.
  std::mutex mailbox_mu_;
  std::vector<Mail> mailbox_;
  // Sender-side sequence counter for deterministic mailbox ordering; only
  // the worker executing this shard increments it.
  uint64_t cross_seq_ = 0;
};

struct ShardedOptions {
  // Worker threads executing shard windows. 0 = min(hardware concurrency,
  // shard count); 1 = run every window inline on the coordinating thread.
  // The choice affects wall-clock time only — never simulation output.
  int threads = 0;
};

class ShardedSimEnvironment {
 public:
  explicit ShardedSimEnvironment(int num_shards, ShardedOptions options = {});
  ~ShardedSimEnvironment();
  ShardedSimEnvironment(const ShardedSimEnvironment&) = delete;
  ShardedSimEnvironment& operator=(const ShardedSimEnvironment&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  SimShard& shard(int i) { return *shards_[static_cast<size_t>(i)]; }

  // Declares that `src` may post events to `dst` arriving no earlier than
  // the sender's clock plus `lookahead` (>= 1 us; smaller of repeated
  // declarations wins). Without a declared edge PostAt(src, dst, ...)
  // is a contract violation.
  void Connect(int src, int dst, SimDuration lookahead);

  // Minimum inbound lookahead of `dst` over declared edges, or nullopt.
  std::optional<SimDuration> Lookahead(int src, int dst) const;

  // Cross-shard schedule: resumes `handle` on shard `dst` at `when`, which
  // must be >= shard(src).now() + lookahead(src, dst). Callable from the
  // worker executing shard `src` (or from the coordinator between runs).
  // Deliveries are merged deterministically at the next barrier, ordered
  // by (when, source shard, sender sequence) and after any events shard
  // `dst` had already scheduled for the same timestamp.
  void PostAt(int src, int dst, SimTime when, std::coroutine_handle<> handle);

  // As PostAt, for a not-yet-started Task. The task must only touch state
  // owned by shard `dst`.
  void PostTask(int src, int dst, SimTime when, Task task);

  // Runs every shard until all queues and mailboxes drain. Returns the
  // maximum shard clock. Output is byte-identical for any `threads`.
  SimTime Run();

  uint64_t total_events_processed() const;
  uint64_t rounds() const { return rounds_; }

 private:
  struct WorkerPool;

  // Drains `shard`'s mailbox into its event queue in deterministic order.
  void DrainMailbox(SimShard* shard);
  // Computes per-shard conservative bounds from next-event times.
  void ComputeBounds(std::vector<SimTime>* bounds);

  std::vector<std::unique_ptr<SimShard>> shards_;
  // lookahead_[src * n + dst]; kNoEdge when undeclared.
  static constexpr SimDuration kNoEdge = -1;
  std::vector<SimDuration> lookahead_;
  bool has_edges_ = false;
  int threads_;
  uint64_t rounds_ = 0;
};

}  // namespace bkup

#endif  // BKUP_SIM_SHARD_H_

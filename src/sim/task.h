// Coroutine task type for the discrete-event simulator.
//
// A `Task` is a simulated process. Tasks are lazy: creating one does nothing
// until it is either spawned onto a SimEnvironment (top-level process) or
// awaited by another task (sub-process call). Awaiting a task transfers
// control to it symmetrically and resumes the awaiter when the task returns.
//
// Ownership: a task handle owns its coroutine frame until the task is
// started. Once started (spawned or awaited), the frame destroys itself at
// final suspend after resuming any continuation, so there is no reference
// counting and no leak on the hot path.
#ifndef BKUP_SIM_TASK_H_
#define BKUP_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <cstdlib>
#include <utility>

namespace bkup {

class Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // resumed when this task finishes
    bool started = false;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        std::coroutine_handle<> cont = h.promise().continuation;
        h.destroy();
        if (cont) {
          return cont;
        }
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    // The simulation is exception-free by construction; a throw is a bug.
    void unhandled_exception() { std::abort(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      DestroyIfUnstarted();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { DestroyIfUnstarted(); }

  // Awaiting a task runs it to completion in simulated time:
  //   co_await SubPhase(env, args);
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
        child.promise().continuation = parent;
        child.promise().started = true;
        return child;  // symmetric transfer into the child
      }
      void await_resume() const noexcept {}
    };
    assert(handle_ && !handle_.promise().started && "task already started");
    return Awaiter{Release()};
  }

  // Used by SimEnvironment::Spawn; transfers frame ownership to the
  // environment's event queue.
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, nullptr);
  }

  bool valid() const { return handle_ != nullptr; }

 private:
  void DestroyIfUnstarted() {
    if (handle_ && !handle_.promise().started) {
      handle_.destroy();
    }
    handle_ = nullptr;
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace bkup

#endif  // BKUP_SIM_TASK_H_

// The discrete-event simulation environment: a virtual clock and an event
// queue of coroutine resumptions. Fully deterministic: events at equal
// times run in schedule (FIFO) order. A SimEnvironment is single-threaded;
// parallel simulations run one environment per shard (src/sim/shard.h),
// each pinned to at most one worker thread at a time, with deterministic
// cross-shard scheduling (DESIGN.md §17).
#ifndef BKUP_SIM_ENVIRONMENT_H_
#define BKUP_SIM_ENVIRONMENT_H_

#include <coroutine>
#include <cstdint>

#include "src/sim/event_queue.h"
#include "src/sim/task.h"
#include "src/util/units.h"

namespace bkup {

class Tracer;          // src/obs/trace.h
class FlightRecorder;  // src/obs/flight_recorder.h

class SimEnvironment {
 public:
  SimEnvironment();
  ~SimEnvironment();
  SimEnvironment(const SimEnvironment&) = delete;
  SimEnvironment& operator=(const SimEnvironment&) = delete;

  // The most recently activated live environment on the *calling thread*,
  // or nullptr. Logging uses this to prefix messages with simulated time;
  // nested environments (a bench creating a fresh one per measurement)
  // behave as a stack. The lookup is one thread-local pointer read — the
  // top of the stack is cached so the hot path never walks it.
  static SimEnvironment* Active();

  // Activates this environment on the current thread for the scope's
  // lifetime (Active(), log clock). Construction already activates on the
  // constructing thread; shard workers use this to adopt a shard's
  // environment built elsewhere.
  class ScopedActivate {
   public:
    explicit ScopedActivate(SimEnvironment* env) : env_(env) {
      PushActive(env_);
    }
    ~ScopedActivate() { PopActive(env_); }
    ScopedActivate(const ScopedActivate&) = delete;
    ScopedActivate& operator=(const ScopedActivate&) = delete;

   private:
    SimEnvironment* env_;
  };

  // Optional span tracer (src/obs/trace.h) attached to this environment.
  // Owned by the caller; the TRACE_* macros and instrumented subsystems
  // no-op when it is null.
  Tracer* tracer() const { return tracer_; }
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Optional flight recorder (src/obs/flight_recorder.h) attached to this
  // environment: the black box that fault/crash sites record into and that
  // failure paths dump. Owned by the caller; sites no-op when it is null.
  FlightRecorder* flight_recorder() const { return flight_recorder_; }
  void set_flight_recorder(FlightRecorder* fr) { flight_recorder_ = fr; }

  SimTime now() const { return now_; }

  // Schedules a coroutine resumption at absolute time `when` (>= now).
  void ScheduleAt(SimTime when, std::coroutine_handle<> handle) {
    queue_.Push(when, next_seq_++, handle, now_);
  }
  void ScheduleNow(std::coroutine_handle<> handle) { ScheduleAt(now_, handle); }

  // Launches a top-level simulated process. The process starts at the
  // current simulated time when the event loop reaches it.
  void Spawn(Task task);

  // Runs until the event queue drains. Returns the final simulated time.
  SimTime Run();

  // Runs until the queue drains or the clock passes `deadline`; the clock
  // is clamped forward to `deadline` if the queue ran dry early.
  SimTime RunUntil(SimTime deadline);

  // Runs every event with timestamp strictly before `bound` and stops
  // without clamping the clock — the shard execution window primitive:
  // a conservative parallel run grants each shard a bound and lets it
  // drain up to (not including) it. Returns events processed in the call.
  uint64_t RunBefore(SimTime bound);

  // Timestamp of the next pending event, or kNoPendingEvent when idle.
  // (Non-const: may stage the next wheel bucket.)
  SimTime NextEventTime() { return queue_.NextTime(); }

  bool idle() { return queue_.Empty(); }

  // Awaitable: suspend the current task for `d` simulated time.
  //   co_await env.Delay(50 * kMillisecond);
  auto Delay(SimDuration d) {
    struct Awaiter {
      SimEnvironment* env;
      SimDuration duration;
      bool await_ready() const noexcept { return duration <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        env->ScheduleAt(env->now_ + duration, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  uint64_t events_processed() const { return events_processed_; }

 private:
  static void PushActive(SimEnvironment* env);
  static void PopActive(SimEnvironment* env);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  Tracer* tracer_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;
  EventQueue queue_;
};

}  // namespace bkup

#endif  // BKUP_SIM_ENVIRONMENT_H_

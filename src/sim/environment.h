// The discrete-event simulation environment: a virtual clock and an event
// queue of coroutine resumptions. Single-threaded and fully deterministic:
// events at equal times run in schedule (FIFO) order.
#ifndef BKUP_SIM_ENVIRONMENT_H_
#define BKUP_SIM_ENVIRONMENT_H_

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/sim/task.h"
#include "src/util/units.h"

namespace bkup {

class Tracer;          // src/obs/trace.h
class FlightRecorder;  // src/obs/flight_recorder.h

class SimEnvironment {
 public:
  SimEnvironment();
  ~SimEnvironment();
  SimEnvironment(const SimEnvironment&) = delete;
  SimEnvironment& operator=(const SimEnvironment&) = delete;

  // The most recently constructed live environment, or nullptr. Logging uses
  // this to prefix messages with simulated time; nested environments (a
  // bench creating a fresh one per measurement) behave as a stack.
  static SimEnvironment* Active();

  // Optional span tracer (src/obs/trace.h) attached to this environment.
  // Owned by the caller; the TRACE_* macros and instrumented subsystems
  // no-op when it is null.
  Tracer* tracer() const { return tracer_; }
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Optional flight recorder (src/obs/flight_recorder.h) attached to this
  // environment: the black box that fault/crash sites record into and that
  // failure paths dump. Owned by the caller; sites no-op when it is null.
  FlightRecorder* flight_recorder() const { return flight_recorder_; }
  void set_flight_recorder(FlightRecorder* fr) { flight_recorder_ = fr; }

  SimTime now() const { return now_; }

  // Schedules a coroutine resumption at absolute time `when` (>= now).
  void ScheduleAt(SimTime when, std::coroutine_handle<> handle);
  void ScheduleNow(std::coroutine_handle<> handle) { ScheduleAt(now_, handle); }

  // Launches a top-level simulated process. The process starts at the
  // current simulated time when the event loop reaches it.
  void Spawn(Task task);

  // Runs until the event queue drains. Returns the final simulated time.
  SimTime Run();

  // Runs until the queue drains or the clock passes `deadline`.
  SimTime RunUntil(SimTime deadline);

  // Awaitable: suspend the current task for `d` simulated time.
  //   co_await env.Delay(50 * kMillisecond);
  auto Delay(SimDuration d) {
    struct Awaiter {
      SimEnvironment* env;
      SimDuration duration;
      bool await_ready() const noexcept { return duration <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        env->ScheduleAt(env->now_ + duration, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // FIFO tiebreak for simultaneous events
    std::coroutine_handle<> handle;

    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  Tracer* tracer_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace bkup

#endif  // BKUP_SIM_ENVIRONMENT_H_

#include "src/sim/throttle.h"

#include <algorithm>

namespace bkup {

BackupThrottle::BackupThrottle(SimEnvironment* env, double bytes_per_s,
                               uint64_t burst_bytes, std::string name)
    : env_(env),
      name_(std::move(name)),
      rate_(bytes_per_s),
      burst_(burst_bytes > 0 ? static_cast<double>(burst_bytes)
                             : std::max(1.0, bytes_per_s)),
      tokens_(burst_),
      last_refill_(env->now()),
      gate_(env, 1, name_ + ".gate") {}

void BackupThrottle::Refill() {
  const SimTime now = env_->now();
  const double elapsed_s = SimToSeconds(now - last_refill_);
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
}

Task BackupThrottle::Acquire(uint64_t bytes) {
  ++stats_.requests;
  stats_.bytes += bytes;
  if (!enabled() || bytes == 0) {
    co_return;
  }
  co_await gate_.Acquire();
  Refill();
  const double need = static_cast<double>(bytes);
  if (tokens_ >= need) {
    tokens_ -= need;
  } else {
    // Sleep for the exact deficit; on wake the bucket holds precisely the
    // request, so tokens land at zero — deterministic and burst-independent.
    const double wait_s = (need - tokens_) / rate_;
    const auto wait = static_cast<SimDuration>(
        wait_s * static_cast<double>(kSecond) + 0.5);
    ++stats_.throttled_requests;
    stats_.total_wait += wait;
    co_await env_->Delay(wait);
    last_refill_ = env_->now();
    tokens_ = 0.0;
  }
  gate_.Release();
}

}  // namespace bkup

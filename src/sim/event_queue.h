// The simulator's pending-event set: a hierarchical calendar-queue /
// timer-wheel hybrid that replaces the seed's std::priority_queue while
// preserving its contract exactly — events pop in ascending (when, seq)
// order, so simultaneous events stay FIFO by schedule order.
//
// Layout (DESIGN.md §17):
//
//   ready   events at the clock's current instant, a plain FIFO ring.
//           Resource release/acquire chains, channel handoffs and zero
//           delays all land here; popping is an index bump, no heap sift.
//   staged  the current wheel bucket, sorted by (when, seq) once when the
//           cursor enters it; late inserts into the open bucket (or below
//           its range after a far cursor jump) binary-insert in place.
//   wheel   kNumBuckets buckets of kBucketWidth simulated time each,
//           covering ~65 ms of near future; insertion is O(1) append.
//           Bucket vectors are reusable slabs: staging swaps the drained
//           staged slab with the bucket's, so steady-state operation
//           allocates nothing.
//   heap    far-future overflow (long device repositions, nightly timers);
//           refilled into the wheel whenever the cursor's horizon grows.
//
// The structure is intrusive to nothing: events are 24-byte values
// (when, seq, coroutine handle) moved between slabs.
#ifndef BKUP_SIM_EVENT_QUEUE_H_
#define BKUP_SIM_EVENT_QUEUE_H_

#include <array>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/units.h"

namespace bkup {

// Sentinel for "no pending event" (NextTime on an empty queue).
inline constexpr SimTime kNoPendingEvent = std::numeric_limits<SimTime>::max();

struct QueuedEvent {
  SimTime when;
  uint64_t seq;  // FIFO tiebreak for simultaneous events
  std::coroutine_handle<> handle;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  bool Empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Inserts an event. `now` is the caller's clock: events at `now` join the
  // ready ring (they can only have been scheduled by the event currently
  // executing, so append order is seq order); `when` must be >= `now`.
  void Push(SimTime when, uint64_t seq, std::coroutine_handle<> handle,
            SimTime now);

  // Timestamp of the next event, kNoPendingEvent when empty. Stages the
  // next bucket if needed; O(1) when a candidate is already staged.
  SimTime NextTime();

  // Removes and returns the (when, seq)-minimal event. Queue must not be
  // empty.
  QueuedEvent Pop();

 private:
  // 64 us buckets x 1024 buckets = ~65 ms of near future on the wheel;
  // microsecond-scale CPU charges and millisecond-scale device I/O stay on
  // the O(1) path, multi-second repositions and nightly timers overflow to
  // the heap.
  static constexpr int kBucketBits = 6;
  static constexpr SimTime kBucketWidth = SimTime{1} << kBucketBits;
  static constexpr size_t kNumBuckets = 1024;
  static constexpr uint64_t kBucketMask = kNumBuckets - 1;
  static constexpr size_t kOccWords = kNumBuckets / 64;

  static bool Before(const QueuedEvent& a, const QueuedEvent& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  // Ensures ready/staged hold the queue minimum (if any): advances the
  // cursor, refills the wheel from the heap as the horizon grows, and
  // sorts the next occupied bucket into `staged_`.
  void Stage();
  // Moves heap events that now fall inside the wheel horizon onto the
  // wheel. Called whenever `cursor_` advances.
  void RefillFromHeap();
  // First occupied bucket number in [cursor_, cursor_ + kNumBuckets), or
  // kNoBucket when the wheel is empty.
  uint64_t FirstOccupiedBucket() const;
  static constexpr uint64_t kNoBucket = ~uint64_t{0};

  void HeapPush(QueuedEvent ev);
  QueuedEvent HeapPop();

  size_t size_ = 0;

  // Ready ring: all events here have when == the caller's current clock.
  std::vector<QueuedEvent> ready_;
  size_t ready_pos_ = 0;

  // Staged slab: the open bucket, sorted ascending by (when, seq).
  std::vector<QueuedEvent> staged_;
  size_t staged_pos_ = 0;
  // Exclusive upper edge of the staged bucket's time range; inserts below
  // it (and above `now`) go into `staged_` to keep the wheel scan sound.
  SimTime staged_range_end_ = 0;

  // Wheel: bucket number b covers [b << kBucketBits, (b+1) << kBucketBits);
  // slot b & kBucketMask holds it. No lap mixing: only buckets in
  // [cursor_, cursor_ + kNumBuckets) are populated.
  std::array<std::vector<QueuedEvent>, kNumBuckets> buckets_;
  std::array<uint64_t, kOccWords> occupied_{};
  size_t wheel_count_ = 0;
  uint64_t cursor_ = 0;  // absolute bucket number of the open bucket

  // Far-future overflow min-heap on (when, seq).
  std::vector<QueuedEvent> heap_;
};

}  // namespace bkup

#endif  // BKUP_SIM_EVENT_QUEUE_H_

#include "src/sim/resource.h"

#include <algorithm>

namespace bkup {

void Resource::AccountToNow() const {
  const SimTime now = env_->now();
  busy_integral_ += (capacity_ - available_) * (now - last_change_);
  last_change_ = now;
}

void Resource::AddObserver(ResourceObserver* observer) {
  observers_.push_back(observer);
}

void Resource::RemoveObserver(ResourceObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void Resource::NotifyObservers() {
  if (observers_.empty()) {
    return;
  }
  const SimTime now = env_->now();
  const int64_t in_use = capacity_ - available_;
  for (ResourceObserver* observer : observers_) {
    observer->OnResourceChange(*this, now, in_use);
  }
}

void Resource::Take(int64_t units) {
  AccountToNow();
  available_ -= units;
  assert(available_ >= 0);
  NotifyObservers();
}

void Resource::Release(int64_t units) {
  AccountToNow();
  available_ += units;
  assert(available_ <= capacity_);
  // Grant FIFO waiters that now fit. Strict FIFO: stop at the first waiter
  // that does not fit, so large requests cannot be starved by small ones.
  while (!waiters_.empty() && waiters_.front().units <= available_) {
    Waiter w = waiters_.front();
    waiters_.pop_front();
    available_ -= w.units;
    env_->ScheduleNow(w.handle);
  }
  NotifyObservers();
}

Task Resource::Use(int64_t units, SimDuration d) {
  co_await Acquire(units);
  co_await env_->Delay(d);
  Release(units);
}

int64_t Resource::BusyIntegral() const {
  AccountToNow();
  return busy_integral_;
}

}  // namespace bkup

#include "src/sim/resource.h"

namespace bkup {

void Resource::AccountToNow() const {
  const SimTime now = env_->now();
  busy_integral_ += (capacity_ - available_) * (now - last_change_);
  last_change_ = now;
}

void Resource::Take(int64_t units) {
  AccountToNow();
  available_ -= units;
  assert(available_ >= 0);
}

void Resource::Release(int64_t units) {
  AccountToNow();
  available_ += units;
  assert(available_ <= capacity_);
  // Grant FIFO waiters that now fit. Strict FIFO: stop at the first waiter
  // that does not fit, so large requests cannot be starved by small ones.
  while (!waiters_.empty() && waiters_.front().units <= available_) {
    Waiter w = waiters_.front();
    waiters_.pop_front();
    available_ -= w.units;
    env_->ScheduleNow(w.handle);
  }
}

Task Resource::Use(int64_t units, SimDuration d) {
  co_await Acquire(units);
  co_await env_->Delay(d);
  Release(units);
}

int64_t Resource::BusyIntegral() const {
  AccountToNow();
  return busy_integral_;
}

}  // namespace bkup

#include "src/sim/resource.h"

#include <algorithm>

namespace bkup {

void Resource::AccountToNow() const {
  const SimTime now = env_->now();
  busy_integral_ += (capacity_ - available_) * (now - last_change_);
  last_change_ = now;
}

void Resource::AddObserver(ResourceObserver* observer) {
  observers_.push_back(observer);
}

void Resource::RemoveObserver(ResourceObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void Resource::NotifyObservers() {
  if (observers_.empty()) {
    return;
  }
  const SimTime now = env_->now();
  const int64_t in_use = capacity_ - available_;
  for (ResourceObserver* observer : observers_) {
    observer->OnResourceChange(*this, now, in_use);
  }
}

void Resource::Take(int64_t units) {
  AccountToNow();
  available_ -= units;
  assert(available_ >= 0);
  NotifyObservers();
}

void Resource::Release(int64_t units) {
  AccountToNow();
  available_ += units;
  assert(available_ <= capacity_);
  // Grant waiters that now fit, foreground class first. Within a class the
  // order is strict FIFO and granting stops at the first waiter that does
  // not fit, so large requests cannot be starved by small ones. Background
  // waiters are considered only while no foreground waiter is parked.
  for (auto& queue : waiters_) {
    while (!queue.empty() && queue.front().units <= available_) {
      Waiter w = queue.front();
      queue.pop_front();
      available_ -= w.units;
      env_->ScheduleNow(w.handle);
    }
    if (!queue.empty()) {
      break;  // the blocked head of this class also blocks lower classes
    }
  }
  NotifyObservers();
}

Task Resource::Use(int64_t units, SimDuration d, int priority) {
  co_await Acquire(units, priority);
  co_await env_->Delay(d);
  Release(units);
}

int64_t Resource::BusyIntegral() const {
  AccountToNow();
  return busy_integral_;
}

}  // namespace bkup

// Bounded single-threaded producer/consumer channel for coroutine pipelines.
//
// Backup jobs are modeled as a reader process and a writer process joined by
// a Channel — exactly the structure of WAFL's dump path (file system reads
// feeding a tape stream through a bounded buffer pool). The channel bound is
// the buffer pool size; when the tape is the bottleneck the channel fills and
// the reader blocks, and vice versa, so bottleneck shifts emerge naturally.
#ifndef BKUP_SIM_CHANNEL_H_
#define BKUP_SIM_CHANNEL_H_

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "src/sim/environment.h"

namespace bkup {

template <typename T>
class Channel {
 public:
  Channel(SimEnvironment* env, size_t capacity)
      : env_(env), capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }
  bool closed() const { return closed_; }

  // Awaitable send. Sending on a closed channel is a programming error.
  //   co_await ch.Send(std::move(chunk));
  auto Send(T value) { return SendAwaiter(this, std::move(value)); }

  // Awaitable receive; yields std::nullopt once the channel is closed and
  // drained.
  //   std::optional<Chunk> c = co_await ch.Recv();
  auto Recv() { return RecvAwaiter(this); }

  // Marks end-of-stream and wakes all parked receivers.
  void Close() {
    assert(!closed_);
    closed_ = true;
    assert(parked_senders_.empty() && "senders blocked at close");
    while (!parked_receivers_.empty()) {
      RecvAwaiter* r = parked_receivers_.front();
      parked_receivers_.pop_front();
      r->result.reset();
      r->have_result = true;
      env_->ScheduleNow(r->handle);
    }
  }

 private:
  struct SendAwaiter {
    SendAwaiter(Channel* channel, T v) : ch(channel), value(std::move(v)) {}

    Channel* ch;
    T value;
    std::coroutine_handle<> handle;

    bool await_ready() {
      assert(!ch->closed_ && "send on closed channel");
      // Fast path 1: hand the value straight to a parked receiver.
      if (!ch->parked_receivers_.empty()) {
        RecvAwaiter* r = ch->parked_receivers_.front();
        ch->parked_receivers_.pop_front();
        r->result = std::move(value);
        r->have_result = true;
        ch->env_->ScheduleNow(r->handle);
        return true;
      }
      // Fast path 2: room in the buffer.
      if (ch->buffer_.size() < ch->capacity_) {
        ch->buffer_.push_back(std::move(value));
        return true;
      }
      return false;
    }

    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch->parked_senders_.push_back(this);
    }

    void await_resume() const noexcept {}
  };

  struct RecvAwaiter {
    explicit RecvAwaiter(Channel* channel) : ch(channel) {}

    Channel* ch;
    std::optional<T> result;
    bool have_result = false;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!ch->buffer_.empty()) {
        result = std::move(ch->buffer_.front());
        ch->buffer_.pop_front();
        have_result = true;
        // A parked sender can now move its value into the freed slot.
        if (!ch->parked_senders_.empty()) {
          SendAwaiter* s = ch->parked_senders_.front();
          ch->parked_senders_.pop_front();
          ch->buffer_.push_back(std::move(s->value));
          ch->env_->ScheduleNow(s->handle);
        }
        return true;
      }
      // Rendezvous with a parked sender when capacity_ == 0.
      if (!ch->parked_senders_.empty()) {
        SendAwaiter* s = ch->parked_senders_.front();
        ch->parked_senders_.pop_front();
        result = std::move(s->value);
        have_result = true;
        ch->env_->ScheduleNow(s->handle);
        return true;
      }
      if (ch->closed_) {
        result.reset();
        have_result = true;
        return true;
      }
      return false;
    }

    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch->parked_receivers_.push_back(this);
    }

    std::optional<T> await_resume() {
      assert(have_result);
      return std::move(result);
    }
  };

  SimEnvironment* env_;
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> buffer_;
  std::deque<SendAwaiter*> parked_senders_;
  std::deque<RecvAwaiter*> parked_receivers_;
};

}  // namespace bkup

#endif  // BKUP_SIM_CHANNEL_H_

// A counted resource with FIFO queuing, the building block for modeling the
// filer's CPU and device arms. Tracks a busy-time integral so benchmark code
// can report utilization over any window (the CPU % columns of Tables 3-5).
//
// Two scheduling classes support backup QoS (DESIGN.md §15): class 0
// (foreground, the default) and class 1 (background). Within a class the
// queue is strictly FIFO; across classes every queued foreground request is
// served before any queued background request, and a foreground acquire may
// overtake background waiters that were already parked. Background work can
// therefore starve under sustained foreground load — which is exactly the
// "backup never starves user traffic" contract.
#ifndef BKUP_SIM_RESOURCE_H_
#define BKUP_SIM_RESOURCE_H_

#include <array>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/sim/environment.h"
#include "src/sim/task.h"
#include "src/util/units.h"

namespace bkup {

class Resource;

// Observation hook for resource state changes. Observers are notified after
// every occupancy change (acquire, release, waiter grant) with the new
// in-use count; the observability layer builds counter tracks and windowed
// utilization samples on top of this. Observers must detach before either
// the resource or the observer is destroyed.
class ResourceObserver {
 public:
  virtual ~ResourceObserver() = default;
  virtual void OnResourceChange(const Resource& res, SimTime now,
                                int64_t in_use) = 0;
};

// Scheduling classes for Acquire/Use. Lower is more urgent.
inline constexpr int kPriorityForeground = 0;
inline constexpr int kPriorityBackground = 1;
inline constexpr int kNumResourcePriorities = 2;

class Resource {
 public:
  Resource(SimEnvironment* env, int64_t capacity, std::string name)
      : env_(env), capacity_(capacity), available_(capacity),
        name_(std::move(name)) {
    assert(capacity > 0);
  }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  const std::string& name() const { return name_; }
  SimEnvironment* env() const { return env_; }
  int64_t capacity() const { return capacity_; }
  int64_t in_use() const { return capacity_ - available_; }
  size_t queue_length() const {
    return waiters_[0].size() + waiters_[1].size();
  }

  // Observation: the vector is empty in the common case, so the per-change
  // cost of the hook is one branch.
  void AddObserver(ResourceObserver* observer);
  void RemoveObserver(ResourceObserver* observer);

  // Awaitable: obtains `units` of the resource, FIFO-fair within its
  // priority class. A foreground (0) acquire may overtake parked background
  // waiters but never parked foreground ones; a background (1) acquire
  // queues behind everything.
  //   co_await cpu.Acquire();
  //   co_await arm.Acquire(1, kPriorityBackground);
  auto Acquire(int64_t units = 1, int priority = kPriorityForeground) {
    struct Awaiter {
      Resource* res;
      int64_t units;
      int priority;
      bool await_ready() {
        if (res->QueuesEmptyThrough(priority) && res->available_ >= units) {
          res->Take(units);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res->waiters_[priority].push_back(Waiter{units, h});
      }
      void await_resume() const noexcept {}
    };
    assert(units > 0 && units <= capacity_);
    assert(priority >= 0 && priority < kNumResourcePriorities);
    return Awaiter{this, units, priority};
  }

  // Returns `units` and grants waiters that now fit: all of class 0 first
  // (strict FIFO, stopping at the first that does not fit so large requests
  // cannot be starved by small ones), then class 1 only while class 0 is
  // empty.
  void Release(int64_t units = 1);

  // Convenience process: hold `units` for `d` of simulated time.
  //   co_await cpu.Use(1, cost);
  Task Use(int64_t units, SimDuration d,
           int priority = kPriorityForeground);

  // Integral of in_use over time, in unit-microseconds, up to `now`.
  // Utilization over [t0, t1] = (BusyIntegral@t1 - BusyIntegral@t0)
  //                             / (capacity * (t1 - t0)).
  int64_t BusyIntegral() const;

 private:
  struct Waiter {
    int64_t units;
    std::coroutine_handle<> handle;
  };

  // True when every waiter queue of class <= priority is empty — the gate a
  // fresh acquire of that class must pass to take units immediately.
  bool QueuesEmptyThrough(int priority) const {
    for (int p = 0; p <= priority; ++p) {
      if (!waiters_[p].empty()) {
        return false;
      }
    }
    return true;
  }

  void Take(int64_t units);
  void AccountToNow() const;
  void NotifyObservers();

  SimEnvironment* env_;
  int64_t capacity_;
  int64_t available_;
  std::string name_;
  std::array<std::deque<Waiter>, kNumResourcePriorities> waiters_;
  std::vector<ResourceObserver*> observers_;

  // Busy accounting (mutable: reading the integral advances it to `now`).
  mutable SimTime last_change_ = 0;
  mutable int64_t busy_integral_ = 0;
};

// Snapshot of a resource at a stage boundary; pairs of these yield the
// per-stage utilization numbers in the paper's tables.
class UtilizationWindow {
 public:
  explicit UtilizationWindow(const Resource* res)
      : res_(res) {}

  void Start(SimTime now) {
    start_time_ = now;
    start_integral_ = res_->BusyIntegral();
  }

  // Mean utilization in [start, now] as a fraction of capacity.
  double Utilization(SimTime now) const {
    const SimDuration span = now - start_time_;
    if (span <= 0) {
      return 0.0;
    }
    const int64_t busy = res_->BusyIntegral() - start_integral_;
    return static_cast<double>(busy) /
           (static_cast<double>(res_->capacity()) * static_cast<double>(span));
  }

 private:
  const Resource* res_;
  SimTime start_time_ = 0;
  int64_t start_integral_ = 0;
};

}  // namespace bkup

#endif  // BKUP_SIM_RESOURCE_H_

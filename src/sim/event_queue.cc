#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace bkup {

void EventQueue::Push(SimTime when, uint64_t seq,
                      std::coroutine_handle<> handle, SimTime now) {
  assert(when >= now && "cannot schedule into the simulated past");
  ++size_;
  if (when == now) {
    // Scheduled by the currently executing event: seq is the largest issued
    // so far, so append order is pop order.
    ready_.push_back(QueuedEvent{when, seq, handle});
    return;
  }
  if (when < staged_range_end_) {
    // Inside (or below) the open bucket's range: keep the staged slab
    // sorted. Below happens only after a far cursor jump left `now` behind
    // the staged range (RunUntil clamping), so order stays total.
    const QueuedEvent ev{when, seq, handle};
    auto it = std::upper_bound(staged_.begin() + staged_pos_, staged_.end(),
                               ev, Before);
    staged_.insert(it, ev);
    return;
  }
  const uint64_t bucket = static_cast<uint64_t>(when) >> kBucketBits;
  if (bucket >= cursor_ + kNumBuckets) {
    HeapPush(QueuedEvent{when, seq, handle});
    return;
  }
  std::vector<QueuedEvent>& slab = buckets_[bucket & kBucketMask];
  slab.push_back(QueuedEvent{when, seq, handle});
  occupied_[(bucket & kBucketMask) >> 6] |= uint64_t{1} << (bucket & 63);
  ++wheel_count_;
}

SimTime EventQueue::NextTime() {
  Stage();
  const bool have_ready = ready_pos_ < ready_.size();
  const bool have_staged = staged_pos_ < staged_.size();
  if (have_ready && have_staged) {
    return std::min(ready_[ready_pos_].when, staged_[staged_pos_].when);
  }
  if (have_ready) {
    return ready_[ready_pos_].when;
  }
  if (have_staged) {
    return staged_[staged_pos_].when;
  }
  return kNoPendingEvent;
}

QueuedEvent EventQueue::Pop() {
  assert(size_ > 0 && "Pop on an empty event queue");
  Stage();
  --size_;
  const bool have_ready = ready_pos_ < ready_.size();
  const bool have_staged = staged_pos_ < staged_.size();
  // Ready events carry the current clock value; a staged event at the same
  // timestamp was scheduled earlier (smaller seq) and must run first.
  if (have_ready &&
      (!have_staged || Before(ready_[ready_pos_], staged_[staged_pos_]))) {
    return ready_[ready_pos_++];
  }
  assert(have_staged);
  return staged_[staged_pos_++];
}

void EventQueue::Stage() {
  if (ready_pos_ < ready_.size() || staged_pos_ < staged_.size()) {
    return;  // a minimum candidate is already at hand
  }
  // Both slabs drained: recycle their capacity.
  ready_.clear();
  ready_pos_ = 0;
  staged_.clear();
  staged_pos_ = 0;
  if (wheel_count_ == 0) {
    if (heap_.empty()) {
      return;  // queue empty
    }
    // Jump the cursor to the heap minimum's bucket, then let the refill
    // below populate the wheel.
    cursor_ = static_cast<uint64_t>(heap_.front().when) >> kBucketBits;
  }
  RefillFromHeap();
  const uint64_t next = FirstOccupiedBucket();
  assert(next != kNoBucket && "wheel count positive but no occupied bucket");
  cursor_ = next;
  // The horizon grew with the cursor: pull newly covered heap events onto
  // the wheel *before* any future Push can target the extended range —
  // otherwise a wheel event could order ahead of a smaller heap event.
  RefillFromHeap();

  const size_t slot = cursor_ & kBucketMask;
  std::vector<QueuedEvent>& slab = buckets_[slot];
  staged_.swap(slab);  // slab recycle: the drained staged vector's capacity
                       // becomes the bucket's next lap
  occupied_[slot >> 6] &= ~(uint64_t{1} << (cursor_ & 63));
  wheel_count_ -= staged_.size();
  std::sort(staged_.begin(), staged_.end(), Before);
  staged_range_end_ = static_cast<SimTime>(cursor_ + 1) << kBucketBits;
}

void EventQueue::RefillFromHeap() {
  const uint64_t horizon = cursor_ + kNumBuckets;
  while (!heap_.empty() &&
         (static_cast<uint64_t>(heap_.front().when) >> kBucketBits) <
             horizon) {
    QueuedEvent ev = HeapPop();
    const uint64_t bucket = static_cast<uint64_t>(ev.when) >> kBucketBits;
    const size_t slot = bucket & kBucketMask;
    buckets_[slot].push_back(ev);
    occupied_[slot >> 6] |= uint64_t{1} << (bucket & 63);
    ++wheel_count_;
  }
}

uint64_t EventQueue::FirstOccupiedBucket() const {
  if (wheel_count_ == 0) {
    return kNoBucket;
  }
  // Scan the occupancy bitmap circularly from the cursor's slot; the first
  // set bit is the global wheel minimum because bucket ranges are strictly
  // increasing along the ring (no lap mixing).
  const uint64_t start = cursor_ & kBucketMask;
  for (size_t step = 0; step <= kOccWords; ++step) {
    const size_t word_idx = ((start >> 6) + step) % kOccWords;
    uint64_t word = occupied_[word_idx];
    if (step == 0) {
      word &= ~uint64_t{0} << (start & 63);  // ignore slots behind the cursor
    }
    if (word == 0) {
      continue;
    }
    const uint64_t slot =
        (word_idx << 6) + static_cast<uint64_t>(__builtin_ctzll(word));
    // Map the ring slot back to an absolute bucket number at or after the
    // cursor.
    return cursor_ + ((slot - cursor_) & kBucketMask);
  }
  return kNoBucket;
}

void EventQueue::HeapPush(QueuedEvent ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const QueuedEvent& a, const QueuedEvent& b) {
                   return Before(b, a);  // min-heap
                 });
}

QueuedEvent EventQueue::HeapPop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const QueuedEvent& a, const QueuedEvent& b) {
                  return Before(b, a);
                });
  QueuedEvent ev = heap_.back();
  heap_.pop_back();
  return ev;
}

}  // namespace bkup

#include "src/backup/charge.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/sim/sync.h"

namespace bkup {

namespace {

struct Run {
  Dbn start;
  uint64_t count;
};

// Serves a list of runs on one disk, then signals the latch.
Task DiskRuns(Disk* disk, std::vector<Run> runs, CountdownLatch* latch) {
  for (const Run& r : runs) {
    co_await disk->TimedAccess(r.start, r.count);
  }
  latch->CountDown();
}

void AppendAccess(std::map<Disk*, std::vector<Run>>* per_disk, Disk* disk,
                  Dbn dbn) {
  std::vector<Run>& runs = (*per_disk)[disk];
  if (!runs.empty()) {
    Run& last = runs.back();
    if (dbn >= last.start && dbn < last.start + last.count) {
      return;  // already covered (e.g. one parity block per stripe)
    }
    if (last.start + last.count == dbn) {
      last.count++;
      return;
    }
  }
  runs.push_back(Run{dbn, 1});
}

}  // namespace

Task ChargeDiskAccess(SimEnvironment* env, Volume* volume,
                      std::span<const Vbn> vbns, bool parity_writes) {
  std::map<Disk*, std::vector<Run>> per_disk;
  // Parity: per RAID group, mirror of the data run pattern (one parity
  // touch per distinct stripe, coalesced the same way).
  std::map<Disk*, std::vector<Run>> parity;
  for (Vbn v : vbns) {
    Volume::Placement p = volume->Locate(v);
    AppendAccess(&per_disk, p.disk, p.dbn);
    if (parity_writes) {
      AppendAccess(&parity, p.parity_disk, p.dbn);
    }
  }
  if (parity_writes) {
    // Parity disks are distinct from data disks, so their runs just join
    // the per-disk schedule (AppendAccess already deduplicated the one
    // parity block shared by a stripe's data writes).
    for (auto& [disk, runs] : parity) {
      std::vector<Run>& merged = per_disk[disk];
      merged.insert(merged.end(), runs.begin(), runs.end());
    }
  }
  if (per_disk.empty()) {
    co_return;
  }
  CountdownLatch latch(env, static_cast<int>(per_disk.size()));
  for (auto& [disk, runs] : per_disk) {
    env->Spawn(DiskRuns(disk, std::move(runs), &latch));
  }
  co_await latch.Wait();
}

Task ChargeSequentialWrites(SimEnvironment* env, Volume* volume,
                            uint64_t blocks) {
  if (blocks == 0) {
    co_return;
  }
  // Round-robin the burst across every data disk; parity disks absorb the
  // same per-group stripe traffic.
  std::vector<std::pair<Disk*, uint64_t>> shares;
  uint64_t data_disks = 0;
  for (size_t g = 0; g < volume->num_groups(); ++g) {
    data_disks += volume->group(g)->data_width();
  }
  const uint64_t per_disk = (blocks + data_disks - 1) / data_disks;
  for (size_t g = 0; g < volume->num_groups(); ++g) {
    RaidGroup* group = volume->group(g);
    for (size_t c = 0; c < group->data_width(); ++c) {
      shares.emplace_back(group->data_disk(c), per_disk);
    }
    shares.emplace_back(group->parity_disk(), per_disk);
  }
  CountdownLatch latch(env, static_cast<int>(shares.size()));
  for (auto& [disk, count] : shares) {
    std::vector<Run> runs{Run{disk->head_position(), count}};
    env->Spawn(DiskRuns(disk, std::move(runs), &latch));
  }
  co_await latch.Wait();
}

}  // namespace bkup

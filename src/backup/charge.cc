#include "src/backup/charge.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/sync.h"

namespace bkup {

SimDuration RetryPolicy::BackoffBefore(int retry) const {
  double backoff = static_cast<double>(initial_backoff);
  for (int i = 1; i < retry; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= static_cast<double>(max_backoff)) {
      return max_backoff;
    }
  }
  return std::min<SimDuration>(static_cast<SimDuration>(backoff),
                               max_backoff);
}

namespace {

struct Run {
  Dbn start;
  uint64_t count;
};

// RAID placement of a disk within its volume: the owning group and the
// column index (parity == data_width()).
struct GroupLocation {
  RaidGroup* group = nullptr;
  size_t column = 0;
};

GroupLocation FindGroupLocation(Volume* volume, Disk* disk) {
  for (size_t g = 0; g < volume->num_groups(); ++g) {
    RaidGroup* group = volume->group(g);
    for (size_t c = 0; c < group->num_disks(); ++c) {
      if (group->data_disk(c) == disk) {
        return {group, c};
      }
    }
  }
  return {};
}

// One best-effort timed access used by the recovery paths (survivors of a
// degraded group, rebuild sweeps). Errors on these members are ignored: a
// second failure in the group is unrecoverable anyway and surfaces through
// the primary path.
Task MemberRun(Disk* disk, Run r, CountdownLatch* latch) {
  co_await disk->TimedAccess(r.start, r.count);
  latch->CountDown();
}

// Serves `r` without the dead column: every surviving member of the group
// reads the same stripe range in parallel and the missing data is XOR'd
// back together.
Task DegradedRun(SimEnvironment* env, RaidGroup* group, size_t dead_column,
                 Run r, FaultCounters* counters) {
  std::vector<Disk*> members;
  for (size_t c = 0; c < group->num_disks(); ++c) {
    Disk* d = group->data_disk(c);
    if (c != dead_column && !d->failed()) {
      members.push_back(d);
    }
  }
  if (members.empty()) {
    co_return;
  }
  CountdownLatch latch(env, static_cast<int>(members.size()));
  for (Disk* d : members) {
    env->Spawn(MemberRun(d, r, &latch));
  }
  co_await latch.Wait();
  if (counters != nullptr) {
    counters->reconstruction_reads += r.count;
  }
}

// Charges a full rebuild of one column: every member of the group — the
// freshly swapped-in replacement included — streams its whole disk.
Task ChargeRebuildSweep(SimEnvironment* env, RaidGroup* group,
                        FaultCounters* counters) {
  const Run sweep{0, group->blocks_per_disk()};
  std::vector<Disk*> members;
  for (size_t c = 0; c < group->num_disks(); ++c) {
    Disk* d = group->data_disk(c);
    if (!d->failed()) {
      members.push_back(d);
    }
  }
  if (members.empty()) {
    co_return;
  }
  CountdownLatch latch(env, static_cast<int>(members.size()));
  for (Disk* d : members) {
    env->Spawn(MemberRun(d, sweep, &latch));
  }
  co_await latch.Wait();
  if (counters != nullptr) {
    counters->reconstruction_reads +=
        sweep.count * (members.size() > 0 ? members.size() - 1 : 0);
  }
}

// Serves a list of runs on one disk — retrying, rebuilding or degrading per
// `policy` — then signals the latch. `error` collects the first
// unrecoverable failure.
Task DiskRuns(SimEnvironment* env, Volume* volume, Disk* disk,
              std::vector<Run> runs, const DiskFaultPolicy* policy,
              Status* error, int priority, CountdownLatch* latch) {
  for (const Run& r : runs) {
    Status st;
    int attempt = 0;
    while (true) {
      ++attempt;
      co_await disk->TimedAccess(r.start, r.count, &st, priority);
      if (st.ok() || policy == nullptr) {
        break;
      }
      FaultCounters* counters = policy->counters;
      if (counters != nullptr) {
        ++counters->disk_io_errors;
      }
      TRACE_INSTANT(env, "faults", "disk.error");
      if (disk->failed()) {
        // Permanent: swap in a hot spare and rebuild the column, or — with
        // no spare left — serve this run degraded off the survivors.
        const GroupLocation loc = FindGroupLocation(volume, disk);
        if (!policy->reconstruct_on_failure || loc.group == nullptr ||
            loc.group->failed_count() > 1) {
          break;  // double failure (or foreign disk): *error gets st
        }
        if (counters != nullptr &&
            counters->spare_disks_used <
                static_cast<uint64_t>(std::max(0, policy->hot_spares))) {
          ++counters->spare_disks_used;
          TRACE_INSTANT(env, "faults", "disk.spare_swap");
          disk->ReplaceWithBlank();
          co_await ChargeRebuildSweep(env, loc.group, counters);
          Status rebuilt = loc.group->Reconstruct(loc.column);
          if (!rebuilt.ok()) {
            st = rebuilt;
            break;
          }
          // Re-issue on the rebuilt drive with a fresh retry budget (the
          // re-issue may still hit a transient fault and re-enter the
          // backoff ladder below).
          attempt = 0;
          continue;
        }
        TRACE_INSTANT(env, "faults", "disk.degraded_read");
        co_await DegradedRun(env, loc.group, loc.column, r, counters);
        st = Status::Ok();
        break;
      }
      // Transient (the drive still answers): exponential backoff.
      if (attempt >= policy->retry.max_attempts) {
        break;
      }
      if (counters != nullptr) {
        ++counters->disk_retries;
      }
      TRACE_INSTANT(env, "faults", "disk.retry");
      co_await env->Delay(policy->retry.BackoffBefore(attempt));
    }
    if (!st.ok() && error != nullptr && error->ok()) {
      *error = st;
    }
  }
  latch->CountDown();
}

void AppendAccess(std::map<Disk*, std::vector<Run>>* per_disk, Disk* disk,
                  Dbn dbn) {
  std::vector<Run>& runs = (*per_disk)[disk];
  if (!runs.empty()) {
    Run& last = runs.back();
    if (dbn >= last.start && dbn < last.start + last.count) {
      return;  // already covered (e.g. one parity block per stripe)
    }
    if (last.start + last.count == dbn) {
      last.count++;
      return;
    }
  }
  runs.push_back(Run{dbn, 1});
}

}  // namespace

Task ChargeDiskAccess(SimEnvironment* env, Volume* volume,
                      std::span<const Vbn> vbns, bool parity_writes,
                      const DiskFaultPolicy* policy, Status* error,
                      int priority) {
  std::map<Disk*, std::vector<Run>> per_disk;
  // Parity: per RAID group, mirror of the data run pattern (one parity
  // touch per distinct stripe, coalesced the same way).
  std::map<Disk*, std::vector<Run>> parity;
  for (Vbn v : vbns) {
    Volume::Placement p = volume->Locate(v);
    AppendAccess(&per_disk, p.disk, p.dbn);
    if (parity_writes) {
      AppendAccess(&parity, p.parity_disk, p.dbn);
    }
  }
  if (parity_writes) {
    // Parity disks are distinct from data disks, so their runs just join
    // the per-disk schedule (AppendAccess already deduplicated the one
    // parity block shared by a stripe's data writes).
    for (auto& [disk, runs] : parity) {
      std::vector<Run>& merged = per_disk[disk];
      merged.insert(merged.end(), runs.begin(), runs.end());
    }
  }
  if (per_disk.empty()) {
    co_return;
  }
  CountdownLatch latch(env, static_cast<int>(per_disk.size()));
  for (auto& [disk, runs] : per_disk) {
    env->Spawn(DiskRuns(env, volume, disk, std::move(runs), policy, error,
                        priority, &latch));
  }
  co_await latch.Wait();
}

Task ChargeSequentialWrites(SimEnvironment* env, Volume* volume,
                            uint64_t blocks, const DiskFaultPolicy* policy,
                            Status* error, int priority) {
  if (blocks == 0) {
    co_return;
  }
  // Round-robin the burst across every data disk; parity disks absorb the
  // same per-group stripe traffic.
  std::vector<std::pair<Disk*, uint64_t>> shares;
  uint64_t data_disks = 0;
  for (size_t g = 0; g < volume->num_groups(); ++g) {
    data_disks += volume->group(g)->data_width();
  }
  const uint64_t per_disk = (blocks + data_disks - 1) / data_disks;
  for (size_t g = 0; g < volume->num_groups(); ++g) {
    RaidGroup* group = volume->group(g);
    for (size_t c = 0; c < group->data_width(); ++c) {
      shares.emplace_back(group->data_disk(c), per_disk);
    }
    shares.emplace_back(group->parity_disk(), per_disk);
  }
  CountdownLatch latch(env, static_cast<int>(shares.size()));
  for (auto& [disk, count] : shares) {
    std::vector<Run> runs{Run{disk->head_position(), count}};
    env->Spawn(DiskRuns(env, volume, disk, std::move(runs), policy, error,
                        priority, &latch));
  }
  co_await latch.Wait();
}

}  // namespace bkup

// Job supervision: resumable, self-healing backup and restore jobs.
//
// A `SupervisionPolicy` tells the replay pipelines how to survive device
// faults instead of aborting on the first error, modelling what dump(8)'s
// operator and WAFL's RAID layer do for real backups:
//
//   * transient disk/tape errors retry on an exponential-backoff schedule;
//   * a permanently failed disk is swapped for a hot spare and its RAID
//     column rebuilt (or, with no spare left, every affected read is served
//     degraded off the surviving members of the group);
//   * a tape media error abandons the mounted media for a spare and rewrites
//     the stream from the last checkpoint — the byte where the abandoned
//     media began — so the final media set splices back into one stream;
//   * a logical dump may skip files it cannot read and press on, where an
//     image dump must hard-fail (it has no file boundaries to skip at).
//
// Every recovery action is counted in the job report's FaultCounters; with a
// deterministic fault plan the counters are bit-identical across runs.
#ifndef BKUP_BACKUP_SUPERVISOR_H_
#define BKUP_BACKUP_SUPERVISOR_H_

#include <vector>

#include "src/backup/jobs.h"

namespace bkup {

struct SupervisionPolicy {
  RetryPolicy disk_retry;
  // Tape errors get fewer, quicker retries: a media defect never heals, so
  // long backoff only delays the remount decision.
  RetryPolicy tape_retry{.max_attempts = 4,
                         .initial_backoff = 250 * kMillisecond,
                         .max_backoff = 2 * kSecond};
  // Remote jobs: a stream connection that fails (a frame lost beyond its
  // retransmit budget) is reconnected and resumed from the receiver's acked
  // watermark, up to max_attempts fresh connections per stream.
  RetryPolicy link_retry{.max_attempts = 5,
                         .initial_backoff = 500 * kMillisecond,
                         .max_backoff = 5 * kSecond};
  // Crash-resumable restores: a killed restore process is restarted (after
  // reboot-scale backoff) and resumed from the catalog diff, up to
  // max_attempts incarnations.
  RetryPolicy restart_retry{.max_attempts = 8,
                            .initial_backoff = kSecond,
                            .max_backoff = 30 * kSecond};
  int hot_spare_disks = 1;
  bool reconstruct_on_disk_failure = true;
  bool remount_on_media_error = true;
  bool skip_unreadable_files = false;

  // The disk-layer view of this policy, charging recovery to `counters`.
  DiskFaultPolicy MakeDiskPolicy(FaultCounters* counters) const;
};

// Supervised variants of the four jobs in jobs.h: identical pipelines with
// the fault-recovery policy armed. `spare_tapes` doubles as the spanning
// set and the remount pool — the operator's stacker feeds both.
Task SupervisedLogicalBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                                LogicalDumpOptions options,
                                const SupervisionPolicy* policy,
                                LogicalBackupJobResult* result,
                                CountdownLatch* done,
                                std::vector<Tape*> spare_tapes = {});

Task SupervisedLogicalRestoreJob(Filer* filer, Filesystem* fs,
                                 TapeDrive* tape,
                                 LogicalRestoreOptions options,
                                 bool bypass_nvram,
                                 const SupervisionPolicy* policy,
                                 LogicalRestoreJobResult* result,
                                 CountdownLatch* done,
                                 std::vector<Tape*> spare_tapes = {});

Task SupervisedImageBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                              ImageDumpOptions options,
                              bool delete_snapshot_after,
                              const SupervisionPolicy* policy,
                              ImageBackupJobResult* result,
                              CountdownLatch* done,
                              std::vector<Tape*> spare_tapes = {});

Task SupervisedImageRestoreJob(Filer* filer, Volume* volume, TapeDrive* tape,
                               const SupervisionPolicy* policy,
                               ImageRestoreJobResult* result,
                               CountdownLatch* done,
                               std::vector<Tape*> spare_tapes = {});

}  // namespace bkup

#endif  // BKUP_BACKUP_SUPERVISOR_H_

// Disk-time charging for backup jobs.
//
// The functional engines report which volume blocks they touched; these
// helpers convert block lists into simulated disk-arm time. Accesses are
// grouped per physical disk, coalesced into contiguous runs, served in
// parallel across disks (each arm is its own resource), and — for writes —
// also charged against the RAID group's parity disk. This is where the
// paper's central asymmetry lives: inode-order (scattered) reads pay seeks
// per run, block-order reads coalesce into long sequential transfers.
#ifndef BKUP_BACKUP_CHARGE_H_
#define BKUP_BACKUP_CHARGE_H_

#include <span>

#include "src/backup/report.h"
#include "src/raid/volume.h"
#include "src/sim/environment.h"
#include "src/sim/task.h"

namespace bkup {

// Exponential-backoff schedule for transient device errors. The defaults
// (10 attempts, 100 ms doubling to a 10 s ceiling, ~33 s of cumulative
// backoff) outlast the transient windows the fault plans inject.
struct RetryPolicy {
  int max_attempts = 10;  // total attempts, including the first
  SimDuration initial_backoff = 100 * kMillisecond;
  double backoff_multiplier = 2.0;
  SimDuration max_backoff = 10 * kSecond;

  // Delay before retry number `retry` (1-based):
  // initial * multiplier^(retry-1), capped at max_backoff.
  SimDuration BackoffBefore(int retry) const;
};

// How the charging layer reacts when a disk access fails. Transient errors
// are retried on the RetryPolicy schedule; a drive that is *failed* is
// handled through RAID: swap in a hot spare and rebuild the column (charging
// a full group sweep), or — with no spare left — serve each run degraded by
// reading the surviving members of the group and reconstructing from parity.
struct DiskFaultPolicy {
  RetryPolicy retry;
  bool reconstruct_on_failure = true;
  int hot_spares = 0;                // replacement drives on the shelf
  // Recovery bookkeeping; also gates the spare budget (spare swaps are
  // skipped when null).
  FaultCounters* counters = nullptr;
};

// Charges the arms of `volume` for accessing `vbns` in the given order.
// Consecutive vbns that land contiguously on a disk coalesce into one
// transfer. With `parity_writes`, each touched RAID group's parity disk is
// charged a mirror of the heaviest data-disk run set in that group
// (RAID-4 full-stripe write behaviour). A non-null `policy` enables fault
// recovery per the policy; the first unrecoverable error lands in `*error`
// (which must then be non-null and start Ok). `priority` is the disk-arm
// scheduling class (kPriorityBackground for a QoS-demoted dump); fault
// recovery traffic always runs foreground — a degraded group is urgent.
Task ChargeDiskAccess(SimEnvironment* env, Volume* volume,
                      std::span<const Vbn> vbns, bool parity_writes,
                      const DiskFaultPolicy* policy = nullptr,
                      Status* error = nullptr,
                      int priority = kPriorityForeground);

// Charges a purely sequential write-anywhere burst of `blocks` blocks
// spread round-robin over all data disks (plus parity), each continuing
// from its current head position. Restore-side flushes use this: the write
// allocator lays restored data out sequentially regardless of how the
// stream was ordered.
Task ChargeSequentialWrites(SimEnvironment* env, Volume* volume,
                            uint64_t blocks,
                            const DiskFaultPolicy* policy = nullptr,
                            Status* error = nullptr,
                            int priority = kPriorityForeground);

}  // namespace bkup

#endif  // BKUP_BACKUP_CHARGE_H_

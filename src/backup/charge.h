// Disk-time charging for backup jobs.
//
// The functional engines report which volume blocks they touched; these
// helpers convert block lists into simulated disk-arm time. Accesses are
// grouped per physical disk, coalesced into contiguous runs, served in
// parallel across disks (each arm is its own resource), and — for writes —
// also charged against the RAID group's parity disk. This is where the
// paper's central asymmetry lives: inode-order (scattered) reads pay seeks
// per run, block-order reads coalesce into long sequential transfers.
#ifndef BKUP_BACKUP_CHARGE_H_
#define BKUP_BACKUP_CHARGE_H_

#include <span>

#include "src/raid/volume.h"
#include "src/sim/environment.h"
#include "src/sim/task.h"

namespace bkup {

// Charges the arms of `volume` for accessing `vbns` in the given order.
// Consecutive vbns that land contiguously on a disk coalesce into one
// transfer. With `parity_writes`, each touched RAID group's parity disk is
// charged a mirror of the heaviest data-disk run set in that group
// (RAID-4 full-stripe write behaviour).
Task ChargeDiskAccess(SimEnvironment* env, Volume* volume,
                      std::span<const Vbn> vbns, bool parity_writes);

// Charges a purely sequential write-anywhere burst of `blocks` blocks
// spread round-robin over all data disks (plus parity), each continuing
// from its current head position. Restore-side flushes use this: the write
// allocator lays restored data out sequentially regardless of how the
// stream was ordered.
Task ChargeSequentialWrites(SimEnvironment* env, Volume* volume,
                            uint64_t blocks);

}  // namespace bkup

#endif  // BKUP_BACKUP_CHARGE_H_

#include "src/backup/parallel.h"

#include <cassert>

#include "src/backup/supervisor.h"

namespace bkup {

namespace {

// One logical part: functional dump of a subtree, then replay to its drive.
Task LogicalPart(Filer* filer, Filesystem* fs, TapeDrive* drive,
                 LogicalDumpOptions options, LogicalBackupJobResult* part,
                 CountdownLatch* latch, const SupervisionPolicy* supervision,
                 std::vector<Tape*> spare_tapes, BackupQos qos,
                 ContentConfig content) {
  SimEnvironment* env = filer->env();
  JobReport& report = part->report;
  report.name = "Logical backup [" + options.subtree + "]";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  if (supervision != nullptr && supervision->skip_unreadable_files) {
    options.skip_unreadable = true;
  }
  Result<FsReader> reader = fs->SnapshotReader(options.snapshot_name);
  if (!reader.ok()) {
    report.status = reader.status();
    latch->CountDown();
    co_return;
  }
  Result<LogicalDumpOutput> dump = RunLogicalDump(*reader, options);
  if (!dump.ok()) {
    report.status = dump.status();
    latch->CountDown();
    co_return;
  }
  part->dump = std::move(*dump);
  report.faults.files_skipped += part->dump.stats.files_skipped;

  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = fs->volume();
  cfg.tape = drive;
  cfg.spare_tapes = std::move(spare_tapes);
  cfg.supervision = supervision;
  cfg.qos = qos;
  cfg.content = content;
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayToTape(cfg, &part->dump.trace, part->dump.stream, &report,
                          &replay_done));
  co_await replay_done.Wait();

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = part->dump.stats.data_blocks * kBlockSize;
  latch->CountDown();
}

Task ImagePart(Filer* filer, Filesystem* fs, TapeDrive* drive,
               ImageDumpOptions options, ImageBackupJobResult* part,
               CountdownLatch* latch, const SupervisionPolicy* supervision,
               std::vector<Tape*> spare_tapes, BackupQos qos,
               ContentConfig content) {
  SimEnvironment* env = filer->env();
  JobReport& report = part->report;
  report.name = "Physical backup [part " +
                std::to_string(options.part_index) + "/" +
                std::to_string(options.part_count) + "]";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  Result<ImageDumpOutput> dump = RunImageDump(fs->volume(), options);
  if (!dump.ok()) {
    report.status = dump.status();
    latch->CountDown();
    co_return;
  }
  part->dump = std::move(*dump);

  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = fs->volume();
  cfg.tape = drive;
  cfg.spare_tapes = std::move(spare_tapes);
  cfg.supervision = supervision;
  cfg.qos = qos;
  cfg.content = content;
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayToTape(cfg, &part->dump.trace, part->dump.stream, &report,
                          &replay_done));
  co_await replay_done.Wait();

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = part->dump.stats.blocks_dumped * kBlockSize;
  latch->CountDown();
}

// The stacker slice for part `k`: per-drive remount media, empty when the
// caller supplied none.
std::vector<Tape*> SpareSlice(const std::vector<std::vector<Tape*>>& spares,
                              size_t k) {
  return k < spares.size() ? spares[k] : std::vector<Tape*>{};
}

std::vector<JobReport> CollectReports(
    const JobReport* control,
    const std::vector<std::unique_ptr<LogicalBackupJobResult>>& parts) {
  std::vector<JobReport> reports;
  if (control != nullptr) {
    reports.push_back(*control);
  }
  for (const auto& p : parts) {
    reports.push_back(p->report);
  }
  return reports;
}

}  // namespace

Task ParallelLogicalBackupJob(Filer* filer, Filesystem* fs,
                              std::vector<TapeDrive*> drives,
                              std::vector<std::string> subtrees,
                              LogicalDumpOptions base_options,
                              ParallelLogicalBackupResult* result,
                              CountdownLatch* done,
                              const SupervisionPolicy* supervision,
                              std::vector<std::vector<Tape*>> spare_tapes,
                              BackupQos qos, ContentConfig content) {
  assert(drives.size() == subtrees.size() && !drives.empty());
  SimEnvironment* env = filer->env();
  JobReport& control = result->control;
  control.name = "Parallel logical backup (control)";
  control.start_time = env->now();
  control.cpu_busy_start = filer->cpu().BusyIntegral();

  const std::string snap = base_options.snapshot_name.empty()
                               ? "dump.parallel"
                               : base_options.snapshot_name;
  control.status = fs->CreateSnapshot(snap);
  if (!control.status.ok()) {
    done->CountDown();
    co_return;
  }
  co_await SnapshotPhase(filer, &control, JobPhase::kCreateSnapshot,
                         filer->model().snapshot_create_time,
                         qos.io_priority);

  CountdownLatch parts_done(env, static_cast<int>(drives.size()));
  for (size_t k = 0; k < drives.size(); ++k) {
    LogicalDumpOptions options = base_options;
    options.snapshot_name = snap;
    options.subtree = subtrees[k];
    options.dump_time = env->now();
    result->parts.push_back(std::make_unique<LogicalBackupJobResult>());
    env->Spawn(LogicalPart(filer, fs, drives[k], options,
                           result->parts.back().get(), &parts_done,
                           supervision, SpareSlice(spare_tapes, k), qos,
                           content));
  }
  co_await parts_done.Wait();

  Status del = fs->DeleteSnapshot(snap);
  if (!del.ok() && control.status.ok()) {
    control.status = del;
  }
  co_await SnapshotPhase(filer, &control, JobPhase::kDeleteSnapshot,
                         filer->model().snapshot_delete_time,
                         qos.io_priority);
  control.end_time = env->now();
  control.cpu_busy_end = filer->cpu().BusyIntegral();

  result->merged =
      MergeReports("Parallel logical backup", CollectReports(&control,
                                                             result->parts));
  done->CountDown();
}

Task ParallelLogicalRestoreJob(Filer* filer, Filesystem* fs,
                               std::vector<TapeDrive*> drives,
                               std::vector<std::string> target_dirs,
                               bool bypass_nvram,
                               ParallelLogicalRestoreResult* result,
                               CountdownLatch* done, ContentConfig content) {
  assert(drives.size() == target_dirs.size() && !drives.empty());
  SimEnvironment* env = filer->env();
  CountdownLatch parts_done(env, static_cast<int>(drives.size()));
  for (size_t k = 0; k < drives.size(); ++k) {
    if (target_dirs[k] != "/" && !fs->LookupPath(target_dirs[k]).ok()) {
      Result<Inum> made = fs->Mkdir(target_dirs[k], 0755);
      if (!made.ok()) {
        result->merged.status = made.status();
        done->CountDown();
        co_return;
      }
    }
    LogicalRestoreOptions options;
    options.target_dir = target_dirs[k];
    result->parts.push_back(std::make_unique<LogicalRestoreJobResult>());
    env->Spawn(LogicalRestoreJob(filer, fs, drives[k], options, bypass_nvram,
                                 result->parts.back().get(), &parts_done, {},
                                 nullptr, content));
  }
  co_await parts_done.Wait();
  std::vector<JobReport> reports;
  for (const auto& p : result->parts) {
    reports.push_back(p->report);
  }
  result->merged = MergeReports("Parallel logical restore", reports);
  done->CountDown();
}

Task ParallelImageBackupJob(Filer* filer, Filesystem* fs,
                            std::vector<TapeDrive*> drives,
                            ImageDumpOptions base_options,
                            bool delete_snapshot_after,
                            ParallelImageBackupResult* result,
                            CountdownLatch* done,
                            const SupervisionPolicy* supervision,
                            std::vector<std::vector<Tape*>> spare_tapes,
                            BackupQos qos, ContentConfig content) {
  assert(!drives.empty());
  SimEnvironment* env = filer->env();
  JobReport& control = result->control;
  control.name = "Parallel physical backup (control)";
  control.start_time = env->now();
  control.cpu_busy_start = filer->cpu().BusyIntegral();

  const std::string snap = base_options.snapshot_name.empty()
                               ? "image.parallel"
                               : base_options.snapshot_name;
  const bool created_here = !fs->FindSnapshot(snap).ok();
  if (created_here) {
    control.status = fs->CreateSnapshot(snap);
    if (!control.status.ok()) {
      done->CountDown();
      co_return;
    }
    co_await SnapshotPhase(filer, &control, JobPhase::kCreateSnapshot,
                           filer->model().snapshot_create_time,
                           qos.io_priority);
  }

  CountdownLatch parts_done(env, static_cast<int>(drives.size()));
  for (size_t k = 0; k < drives.size(); ++k) {
    ImageDumpOptions options = base_options;
    options.snapshot_name = snap;
    options.part_index = static_cast<uint32_t>(k);
    options.part_count = static_cast<uint32_t>(drives.size());
    options.dump_time = env->now();
    result->parts.push_back(std::make_unique<ImageBackupJobResult>());
    env->Spawn(ImagePart(filer, fs, drives[k], options,
                         result->parts.back().get(), &parts_done,
                         supervision, SpareSlice(spare_tapes, k), qos,
                         content));
  }
  co_await parts_done.Wait();

  if (delete_snapshot_after && created_here) {
    Status del = fs->DeleteSnapshot(snap);
    if (!del.ok() && control.status.ok()) {
      control.status = del;
    }
    co_await SnapshotPhase(filer, &control, JobPhase::kDeleteSnapshot,
                           filer->model().snapshot_delete_time,
                           qos.io_priority);
  }
  control.end_time = env->now();
  control.cpu_busy_end = filer->cpu().BusyIntegral();

  std::vector<JobReport> reports{control};
  for (const auto& p : result->parts) {
    reports.push_back(p->report);
  }
  result->merged = MergeReports("Parallel physical backup", reports);
  done->CountDown();
}

Task ParallelImageRestoreJob(Filer* filer, Volume* volume,
                             std::vector<TapeDrive*> drives,
                             ParallelImageRestoreResult* result,
                             CountdownLatch* done, ContentConfig content) {
  assert(!drives.empty());
  SimEnvironment* env = filer->env();
  CountdownLatch parts_done(env, static_cast<int>(drives.size()));
  for (TapeDrive* drive : drives) {
    result->parts.push_back(std::make_unique<ImageRestoreJobResult>());
    env->Spawn(ImageRestoreJob(filer, volume, drive,
                               result->parts.back().get(), &parts_done, {},
                               nullptr, content));
  }
  co_await parts_done.Wait();
  std::vector<JobReport> reports;
  for (const auto& p : result->parts) {
    reports.push_back(p->report);
  }
  result->merged = MergeReports("Parallel physical restore", reports);
  done->CountDown();
}

}  // namespace bkup

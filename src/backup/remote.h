// Remote backup and restore: the local jobs of jobs.h with a simulated
// network spliced between the filer and the tape.
//
// The paper's dump-stream portability claim (§2: the stream "can be written
// to tape, to a file, or sent over a network"; §6's three-way restore
// matrix) is exercised literally here — the same functional engines and the
// same replay halves run, but the producer lives on the filer and the tape
// writer on a `TapeServer` across a `NetLink`:
//
//     [disk reads + CPU] -> Channel<chunk> -> StreamConn -> [tape writes]
//         (filer)                              (NetLink)    (tape server)
//
// A stream that outlives its connection (a frame lost beyond its retransmit
// budget) is reconnected by the supervisor and resumed from the receiver's
// acked watermark — the network analogue of the tape remount ladder. See
// DESIGN.md §10 for the transport model.
#ifndef BKUP_BACKUP_REMOTE_H_
#define BKUP_BACKUP_REMOTE_H_

#include <memory>
#include <vector>

#include "src/backup/jobs.h"
#include "src/backup/supervisor.h"
#include "src/net/link.h"
#include "src/net/stream_conn.h"
#include "src/net/tape_server.h"

namespace bkup {

// Where a remote job's stream lands (or comes from): one drive on a tape
// server, reached over a link. `spare_tapes` plays the same double role as
// in ReplayConfig — spanning set and remount pool, now on the server side.
// A null `supervision` fails the job on the first unrecovered link or tape
// error; with a policy, connections are re-made per `link_retry`.
struct RemoteTarget {
  NetLink* link = nullptr;
  TapeServer* server = nullptr;
  TapeDrive* drive = nullptr;
  std::vector<Tape*> spare_tapes;
  const SupervisionPolicy* supervision = nullptr;
  // Backup QoS for jobs run against this target. The throttle paces the
  // *wire* (every StreamConn of the session acquires each frame's bytes
  // before transmitting — not the producer, so bytes are charged once);
  // io_priority demotes the filer-side disk/CPU charges as for local jobs.
  BackupQos qos;
  // Content stages (DESIGN.md §16): backups encode on the filer before the
  // link, so the session ships wire bytes (the throttle and the acked-floor
  // reconnect machinery operate in post-stage coordinates, and a resend
  // never re-charges encode CPU); restores decode on the filer after the
  // link. Restores must pass the same config — in particular the same
  // ChunkIndex — the backup ran with.
  ContentConfig content;
};

// Snapshot create -> 4-phase dump, streamed over the link to the server's
// drive -> snapshot delete. The report's net columns show the link payload.
Task RemoteLogicalBackupJob(Filer* filer, Filesystem* fs, RemoteTarget target,
                            LogicalDumpOptions options,
                            LogicalBackupJobResult* result,
                            CountdownLatch* done);

// Restores a logical stream read off the server's drive, shipped to the
// filer over the link, and replayed through the file system.
Task RemoteLogicalRestoreJob(Filer* filer, Filesystem* fs, RemoteTarget target,
                             LogicalRestoreOptions options, bool bypass_nvram,
                             LogicalRestoreJobResult* result,
                             CountdownLatch* done);

struct RemoteSingleFileRestoreResult {
  LogicalRestoreOutput restore;
  JobReport report;
  uint64_t link_bytes = 0;         // stream bytes actually shipped
  uint64_t full_stream_bytes = 0;  // what a naive full-stream pull would move
  bool budget_rejected = false;    // the LinkBudget refused the reservation
};

// Restores one file (or subtree) from the server's media using the dump's
// catalog: the catalog turns the path into exact byte ranges, the server
// reads only those ranges (seek/read ladders via TapeServer::ReadRange), and
// only O(file) bytes cross the link instead of the whole stream — the
// paper's "stupidity recovery" at WAN cost. `budget` (optional) gates the
// transfer on the nightly link allowance, reserving the catalog's estimate
// up front. Single-media only: ranges address the drive's mounted tape.
Task RemoteSingleFileRestoreJob(Filer* filer, Filesystem* fs,
                                RemoteTarget target,
                                const TapeCatalog* catalog, std::string path,
                                LogicalRestoreOptions options,
                                bool bypass_nvram, LinkBudget* budget,
                                RemoteSingleFileRestoreResult* result,
                                CountdownLatch* done);

// Block-order image dump streamed over the link to the server's drive.
Task RemoteImageBackupJob(Filer* filer, Filesystem* fs, RemoteTarget target,
                          ImageDumpOptions options, bool delete_snapshot_after,
                          ImageBackupJobResult* result, CountdownLatch* done);

// Image restore of the server-side media straight into the RAID layer.
Task RemoteImageRestoreJob(Filer* filer, Volume* volume, RemoteTarget target,
                           ImageRestoreJobResult* result, CountdownLatch* done);

struct ParallelRemoteImageBackupResult {
  std::vector<std::unique_ptr<ImageBackupJobResult>> parts;
  JobReport control;
  JobReport merged;
};

// Stripes one image dump over N server drives (part k of N per drive) from
// one shared snapshot, each part on its own stream session — all of them
// contending for the same link, which is what makes the link the bottleneck
// where local parallel physical dump scales with drives.
// `qos` applies to every part; the parts' sessions share one throttle
// bucket, so the cap bounds the aggregate link rate of the striped dump.
Task ParallelRemoteImageBackupJob(Filer* filer, Filesystem* fs, NetLink* link,
                                  TapeServer* server,
                                  std::vector<TapeDrive*> drives,
                                  ImageDumpOptions base_options,
                                  bool delete_snapshot_after,
                                  const SupervisionPolicy* supervision,
                                  ParallelRemoteImageBackupResult* result,
                                  CountdownLatch* done, BackupQos qos = {},
                                  ContentConfig content = {});

}  // namespace bkup

#endif  // BKUP_BACKUP_REMOTE_H_

#include "src/backup/jobs.h"

#include <algorithm>

namespace bkup {

namespace {

struct Chunk {
  uint64_t begin;
  uint64_t end;
  JobPhase phase;
};

// Consumer half of a backup pipeline: drains chunks to the tape, loading
// the next spare media when the mounted one fills (multi-volume dumps).
Task TapeWriterProc(ReplayConfig cfg, std::span<const uint8_t> stream,
                    Channel<Chunk>* channel, JobReport* report,
                    SimEvent* writer_done) {
  SimEnvironment* env = cfg.filer->env();
  size_t next_spare = 0;
  if (cfg.tape->loaded()) {
    report->tapes_used.push_back(cfg.tape->tape()->label());
  }
  while (true) {
    std::optional<Chunk> chunk = co_await channel->Recv();
    if (!chunk.has_value()) {
      break;
    }
    const uint64_t n = chunk->end - chunk->begin;
    if (cfg.tape->loaded() &&
        cfg.tape->position() + n > cfg.tape->tape()->capacity()) {
      if (next_spare < cfg.spare_tapes.size()) {
        co_await cfg.tape->TimedLoadMedia(cfg.spare_tapes[next_spare++]);
        report->tapes_used.push_back(cfg.tape->tape()->label());
      }  // else fall through: the write fails with NoSpace below
    }
    Status st;
    co_await cfg.tape->TimedWrite(stream.subspan(chunk->begin, n), &st);
    if (!st.ok() && report->status.ok()) {
      report->status = st;
    }
    report->TouchPhase(chunk->phase, env->now(),
                       cfg.filer->cpu().BusyIntegral());
    report->phase(chunk->phase).tape_bytes += n;
  }
  writer_done->Notify();
}

// Producer half of a restore pipeline: reads the tape and publishes how
// many stream bytes have arrived, spanning onto the next media of a
// multi-volume set as each tape runs dry.
Task TapeReaderProc(ReplayConfig cfg, uint64_t total_bytes,
                    Channel<uint64_t>* channel, JobReport* report) {
  std::vector<uint8_t> scratch(cfg.chunk_bytes);
  size_t next_spare = 0;
  if (cfg.tape->loaded()) {
    report->tapes_used.push_back(cfg.tape->tape()->label());
  }
  uint64_t pos = 0;
  while (pos < total_bytes) {
    uint64_t remaining_on_tape =
        cfg.tape->loaded() ? cfg.tape->tape()->size() - cfg.tape->position()
                           : 0;
    if (remaining_on_tape == 0) {
      if (next_spare >= cfg.spare_tapes.size()) {
        if (report->status.ok()) {
          report->status = Corruption("multi-volume set ended early");
        }
        break;
      }
      co_await cfg.tape->TimedLoadMedia(cfg.spare_tapes[next_spare++]);
      report->tapes_used.push_back(cfg.tape->tape()->label());
      remaining_on_tape = cfg.tape->tape()->size();
    }
    const uint64_t n = std::min<uint64_t>(
        {cfg.chunk_bytes, total_bytes - pos, remaining_on_tape});
    Status st;
    co_await cfg.tape->TimedRead(std::span(scratch).first(n), &st);
    if (!st.ok() && report->status.ok()) {
      report->status = st;
    }
    pos += n;
    co_await channel->Send(pos);
  }
  channel->Close();
}

// Charges one event's disk reads, then signals its ready-event and frees a
// slot in the read-ahead window.
Task DiskFetch(ReplayConfig cfg, const IoEvent* event, SimEvent* ready,
               Resource* window) {
  co_await ChargeDiskAccess(cfg.filer->env(), cfg.volume, event->disk_reads,
                            /*parity_writes=*/false);
  ready->Notify();
  window->Release();
}

// Write-behind worker for the restore side.
Task DiskFlush(ReplayConfig cfg, std::vector<Vbn> writes,
               uint64_t seq_blocks, Resource* window) {
  SimEnvironment* env = cfg.filer->env();
  if (!writes.empty()) {
    co_await ChargeDiskAccess(env, cfg.volume, writes,
                              /*parity_writes=*/true);
  } else if (seq_blocks > 0) {
    co_await ChargeSequentialWrites(env, cfg.volume, seq_blocks);
  }
  window->Release();
}

}  // namespace

Task ReplayToTape(ReplayConfig cfg, const IoTrace* trace,
                  std::span<const uint8_t> stream, JobReport* report,
                  CountdownLatch* done) {
  SimEnvironment* env = cfg.filer->env();
  Channel<Chunk> channel(env, cfg.pipeline_depth);
  SimEvent writer_done(env);
  env->Spawn(TapeWriterProc(cfg, stream, &channel, report, &writer_done));

  // Read-ahead: keep up to disk_window events' disk reads in flight; the
  // stream is still produced in order.
  const size_t n_events = trace->events.size();
  std::vector<std::unique_ptr<SimEvent>> ready(n_events);
  Resource window(env, static_cast<int64_t>(std::max<size_t>(
                           1, cfg.disk_window)), "readahead");
  size_t spawned = 0;
  auto SpawnFetchesUpTo = [&](size_t limit) -> Task {
    while (spawned < std::min(limit, n_events)) {
      const IoEvent& ev = trace->events[spawned];
      ready[spawned] = std::make_unique<SimEvent>(env);
      if (ev.disk_reads.empty()) {
        ready[spawned]->Notify();
      } else {
        co_await window.Acquire();
        env->Spawn(DiskFetch(cfg, &ev, ready[spawned].get(), &window));
      }
      ++spawned;
    }
  };

  uint64_t sent = 0;
  for (size_t i = 0; i < n_events; ++i) {
    const IoEvent& e = trace->events[i];
    co_await SpawnFetchesUpTo(i + cfg.disk_window + 1);
    report->TouchPhase(e.phase, env->now(), cfg.filer->cpu().BusyIntegral());
    co_await ready[i]->Wait();
    report->phase(e.phase).disk_bytes += e.disk_reads.size() * kBlockSize;
    co_await cfg.filer->ChargeCpu(e.cpu);
    while (sent < e.stream_end) {
      const uint64_t n =
          std::min<uint64_t>(cfg.chunk_bytes, e.stream_end - sent);
      co_await channel.Send(Chunk{sent, sent + n, e.phase});
      sent += n;
    }
    report->TouchPhase(e.phase, env->now(), cfg.filer->cpu().BusyIntegral());
  }
  channel.Close();
  co_await writer_done.Wait();
  report->stream_bytes += stream.size();
  done->CountDown();
}

Task ReplayFromTape(ReplayConfig cfg, const IoTrace* trace,
                    uint64_t stream_bytes, JobReport* report,
                    CountdownLatch* done) {
  SimEnvironment* env = cfg.filer->env();
  Channel<uint64_t> channel(env, cfg.pipeline_depth);
  env->Spawn(TapeReaderProc(cfg, stream_bytes, &channel, report));
  const auto window_depth =
      static_cast<int64_t>(std::max<size_t>(1, cfg.disk_window));
  Resource write_window(env, window_depth, "writebehind");

  uint64_t available = 0;
  uint64_t consumed = 0;
  for (const IoEvent& e : trace->events) {
    // Wait for the tape to deliver this event's bytes.
    while (available < e.stream_end) {
      std::optional<uint64_t> watermark = co_await channel.Recv();
      if (!watermark.has_value()) {
        available = stream_bytes;
        break;
      }
      available = *watermark;
    }
    report->TouchPhase(e.phase, env->now(), cfg.filer->cpu().BusyIntegral());
    report->phase(e.phase).tape_bytes += e.stream_end - consumed;
    consumed = e.stream_end;

    co_await cfg.filer->ChargeCpu(e.cpu);
    if (cfg.charge_nvram && e.nvram_bytes > 0) {
      co_await cfg.filer->ChargeNvram(e.nvram_bytes);
    }
    // Disk flushes proceed write-behind, bounded by the disk window.
    if (!e.disk_writes.empty()) {
      // The engine knows the exact addresses (image restore).
      co_await write_window.Acquire();
      env->Spawn(DiskFlush(cfg, e.disk_writes, 0, &write_window));
      report->phase(e.phase).disk_bytes +=
          e.disk_writes.size() * kBlockSize;
    } else if (e.blocks_written > 0) {
      // Write-anywhere flush: sequential burst plus CP meta amplification.
      const auto blocks = static_cast<uint64_t>(
          static_cast<double>(e.blocks_written) *
          (1.0 + cfg.write_meta_multiplier));
      co_await write_window.Acquire();
      env->Spawn(DiskFlush(cfg, {}, blocks, &write_window));
      report->phase(e.phase).disk_bytes += blocks * kBlockSize;
    }
    report->TouchPhase(e.phase, env->now(), cfg.filer->cpu().BusyIntegral());
  }
  // Drain any watermarks still queued (trailing stream padding) and wait
  // for outstanding write-behind flushes.
  while (true) {
    std::optional<uint64_t> watermark = co_await channel.Recv();
    if (!watermark.has_value()) {
      break;
    }
  }
  co_await write_window.Acquire(window_depth);
  write_window.Release(window_depth);
  report->stream_bytes += stream_bytes;
  done->CountDown();
}

Task SnapshotPhase(Filer* filer, JobReport* report, JobPhase phase,
                   SimDuration duration) {
  SimEnvironment* env = filer->env();
  report->TouchPhase(phase, env->now(), filer->cpu().BusyIntegral());
  // Duty-cycle the CPU at the target fraction in short slices so that
  // concurrent jobs are not starved for the whole window.
  const SimTime deadline = env->now() + duration;
  const SimDuration slice = 20 * kMillisecond;
  const auto busy_slice = static_cast<SimDuration>(
      static_cast<double>(slice) * filer->model().snapshot_cpu_fraction);
  while (env->now() < deadline) {
    co_await filer->cpu().Use(1, busy_slice);
    const SimDuration idle =
        std::min<SimDuration>(slice - busy_slice, deadline - env->now());
    if (idle > 0) {
      co_await env->Delay(idle);
    }
  }
  report->TouchPhase(phase, env->now(), filer->cpu().BusyIntegral());
}

Task LogicalBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                      LogicalDumpOptions options,
                      LogicalBackupJobResult* result, CountdownLatch* done,
                      std::vector<Tape*> spare_tapes) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Logical backup";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  const std::string snap =
      options.snapshot_name.empty() ? "dump.auto" : options.snapshot_name;
  options.snapshot_name = snap;
  report.status = fs->CreateSnapshot(snap);
  if (!report.status.ok()) {
    done->CountDown();
    co_return;
  }
  co_await SnapshotPhase(filer, &report, JobPhase::kCreateSnapshot,
                         filer->model().snapshot_create_time);

  options.dump_time = env->now();
  Result<FsReader> reader = fs->SnapshotReader(snap);
  if (!reader.ok()) {
    report.status = reader.status();
    done->CountDown();
    co_return;
  }
  Result<LogicalDumpOutput> dump = RunLogicalDump(*reader, options);
  if (!dump.ok()) {
    report.status = dump.status();
    done->CountDown();
    co_return;
  }
  result->dump = std::move(*dump);

  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = fs->volume();
  cfg.tape = tape;
  cfg.spare_tapes = std::move(spare_tapes);
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayToTape(cfg, &result->dump.trace, result->dump.stream,
                          &report, &replay_done));
  co_await replay_done.Wait();

  Status del = fs->DeleteSnapshot(snap);
  if (!del.ok() && report.status.ok()) {
    report.status = del;
  }
  co_await SnapshotPhase(filer, &report, JobPhase::kDeleteSnapshot,
                         filer->model().snapshot_delete_time);

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->dump.stats.data_blocks * kBlockSize;
  done->CountDown();
}

Task LogicalRestoreJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                       LogicalRestoreOptions options, bool bypass_nvram,
                       LogicalRestoreJobResult* result, CountdownLatch* done,
                       std::vector<Tape*> spare_tapes) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = bypass_nvram ? "Logical restore (NVRAM bypass)"
                             : "Logical restore";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  if (!tape->loaded()) {
    report.status = FailedPrecondition("no tape loaded for restore");
    done->CountDown();
    co_return;
  }
  // A multi-volume set restores as the concatenation of its media.
  std::vector<uint8_t> spanned;
  std::span<const uint8_t> stream = tape->tape()->contents();
  if (!spare_tapes.empty()) {
    spanned.assign(stream.begin(), stream.end());
    for (Tape* t : spare_tapes) {
      spanned.insert(spanned.end(), t->contents().begin(),
                     t->contents().end());
    }
    stream = spanned;
  }

  fs->MarkCpCounters();
  Result<LogicalRestoreOutput> restored =
      RunLogicalRestore(fs, stream, options);
  if (!restored.ok()) {
    report.status = restored.status();
    done->CountDown();
    co_return;
  }
  result->restore = std::move(*restored);

  // Meta-data write amplification measured from the real consistency
  // points the functional restore performed.
  const uint64_t data_writes = fs->cp_data_writes_since_mark();
  const uint64_t meta_writes = fs->cp_meta_writes_since_mark();
  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = fs->volume();
  cfg.tape = tape;
  cfg.spare_tapes = std::move(spare_tapes);
  cfg.charge_nvram = !bypass_nvram;
  cfg.write_meta_multiplier =
      data_writes > 0
          ? static_cast<double>(meta_writes) / static_cast<double>(data_writes)
          : 0.5;

  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayFromTape(cfg, &result->restore.trace, stream.size(),
                            &report, &replay_done));
  co_await replay_done.Wait();

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->restore.stats.bytes_restored;
  done->CountDown();
}

Task ImageBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                    ImageDumpOptions options, bool delete_snapshot_after,
                    ImageBackupJobResult* result, CountdownLatch* done) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Physical backup";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  const std::string snap =
      options.snapshot_name.empty() ? "image.auto" : options.snapshot_name;
  options.snapshot_name = snap;
  // The snapshot may already exist when several parallel part-jobs share
  // one quiesce point; only the first creates it.
  const bool created_here = !fs->FindSnapshot(snap).ok();
  if (created_here) {
    report.status = fs->CreateSnapshot(snap);
    if (!report.status.ok()) {
      done->CountDown();
      co_return;
    }
    co_await SnapshotPhase(filer, &report, JobPhase::kCreateSnapshot,
                           filer->model().snapshot_create_time);
  }

  options.dump_time = env->now();
  Result<ImageDumpOutput> dump = RunImageDump(fs->volume(), options);
  if (!dump.ok()) {
    report.status = dump.status();
    done->CountDown();
    co_return;
  }
  result->dump = std::move(*dump);

  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = fs->volume();
  cfg.tape = tape;
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayToTape(cfg, &result->dump.trace, result->dump.stream,
                          &report, &replay_done));
  co_await replay_done.Wait();

  if (delete_snapshot_after && created_here) {
    Status del = fs->DeleteSnapshot(snap);
    if (!del.ok() && report.status.ok()) {
      report.status = del;
    }
    co_await SnapshotPhase(filer, &report, JobPhase::kDeleteSnapshot,
                           filer->model().snapshot_delete_time);
  }

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->dump.stats.blocks_dumped * kBlockSize;
  done->CountDown();
}

Task ImageRestoreJob(Filer* filer, Volume* volume, TapeDrive* tape,
                     ImageRestoreJobResult* result, CountdownLatch* done) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Physical restore";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  if (!tape->loaded()) {
    report.status = FailedPrecondition("no tape loaded for restore");
    done->CountDown();
    co_return;
  }
  const std::span<const uint8_t> stream = tape->tape()->contents();
  Result<ImageRestoreOutput> restored = RunImageRestore(volume, stream);
  if (!restored.ok()) {
    report.status = restored.status();
    done->CountDown();
    co_return;
  }
  result->restore = std::move(*restored);

  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = volume;
  cfg.tape = tape;
  cfg.charge_nvram = false;  // "bypass the NVRAM ... further enhancing
                             // performance"
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayFromTape(cfg, &result->restore.trace, stream.size(),
                            &report, &replay_done));
  co_await replay_done.Wait();

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes =
      result->restore.stats.blocks_restored * kBlockSize;
  done->CountDown();
}

}  // namespace bkup

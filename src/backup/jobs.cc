#include "src/backup/jobs.h"

#include <algorithm>

#include "src/backup/supervisor.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"

namespace bkup {

PhaseSpanner::PhaseSpanner(SimEnvironment* env, const std::string& job_name)
    : tracer_(env->tracer()) {
  if (tracer_ != nullptr) {
    track_ = tracer_->Track("job:" + job_name);
  }
}

PhaseSpanner::~PhaseSpanner() { Close(); }

void PhaseSpanner::Enter(JobPhase phase) {
  if (tracer_ == nullptr || phase == current_) {
    return;
  }
  if (current_ != JobPhase::kCount) {
    tracer_->End(track_);
  }
  current_ = phase;
  tracer_->Begin(track_, JobPhaseName(phase));
}

void PhaseSpanner::Close() {
  if (tracer_ != nullptr && current_ != JobPhase::kCount) {
    tracer_->End(track_);
    current_ = JobPhase::kCount;
  }
}

// Recovers a failed tape write of stream[begin, end). On entry `*st` holds
// the error. Transient errors back off and re-issue; an error that outlives
// the retry budget is treated as a media fault: the mounted media is
// abandoned for the next spare and everything it held — stream[*media_start,
// begin) plus the failing piece — is rewritten from the checkpoint, exactly
// the way a dump(8) operator re-feeds a tape after a write error. Nested
// failures (a defective spare) loop back through the same ladder until the
// spares run out.
Task RecoverTapeWrite(SimEnvironment* env, TapeDrive* tape,
                      std::span<const uint8_t> stream, uint64_t begin,
                      uint64_t end, std::span<Tape* const> spares,
                      uint64_t chunk_bytes, const SupervisionPolicy& sup,
                      size_t* next_spare, uint64_t* media_start,
                      JobReport* report, Status* st) {
  FaultCounters& faults = report->faults;
  uint64_t cursor = begin;     // start of the piece whose write failed
  uint64_t failed_at = begin;  // where the retry budget is being spent
  int attempt = 1;
  while (true) {
    ++faults.tape_errors;
    TRACE_INSTANT(env, "faults", "tape.error");
    if (st->code() == ErrorCode::kNoSpace) {
      co_return;  // capacity is the spanning path's job, not a fault
    }
    if (attempt < sup.tape_retry.max_attempts) {
      ++faults.tape_retries;
      TRACE_INSTANT(env, "faults", "tape.retry");
      co_await env->Delay(sup.tape_retry.BackoffBefore(attempt));
      ++attempt;
    } else {
      // Persistent: remount a spare and rewind to the checkpoint.
      if (!sup.remount_on_media_error || *next_spare >= spares.size()) {
        co_return;  // unrecoverable; *st keeps the final error
      }
      Tape* spare = spares[(*next_spare)++];
      co_await tape->TimedLoadMedia(spare);
      ++faults.tape_remounts;
      TRACE_INSTANT(env, "faults", "tape.remount");
      report->tapes_used.push_back(spare->label());
      if (!report->final_media.empty()) {
        report->final_media.pop_back();  // the abandoned media
      }
      report->final_media.push_back(spare->label());
      faults.bytes_rewritten += cursor - *media_start;
      cursor = *media_start;
      failed_at = cursor;
      attempt = 1;
    }
    // Replay [cursor, end) piecewise; stop at the first failure.
    *st = Status::Ok();
    while (cursor < end && st->ok()) {
      const uint64_t n = std::min<uint64_t>(chunk_bytes, end - cursor);
      co_await tape->TimedWrite(stream.subspan(cursor, n), st);
      if (st->ok()) {
        cursor += n;
      }
    }
    if (st->ok()) {
      co_return;
    }
    if (cursor != failed_at) {
      failed_at = cursor;  // progress was made: fresh retry budget
      attempt = 1;
    }
  }
}

namespace {

// Consumer half of a backup pipeline: drains chunks to the tape, loading
// the next spare media when the mounted one fills (multi-volume dumps).
// Under supervision, write errors run the retry/remount ladder above.
Task TapeWriterProc(ReplayConfig cfg, std::span<const uint8_t> stream,
                    Channel<StreamChunk>* channel, JobReport* report,
                    SimEvent* writer_done) {
  SimEnvironment* env = cfg.filer->env();
  size_t next_spare = 0;
  // Checkpoint: the stream offset where the mounted media begins. Tape
  // content is always stream[media_start, media_start + position), which is
  // what makes abandon-and-rewrite possible.
  uint64_t media_start = 0;
  if (cfg.tape->loaded()) {
    report->tapes_used.push_back(cfg.tape->tape()->label());
    report->final_media.push_back(cfg.tape->tape()->label());
  }
  while (true) {
    std::optional<StreamChunk> chunk = co_await channel->Recv();
    if (!chunk.has_value()) {
      break;
    }
    const uint64_t n = chunk->end - chunk->begin;
    if (cfg.tape->loaded() &&
        cfg.tape->position() + n > cfg.tape->tape()->capacity()) {
      if (next_spare < cfg.spare_tapes.size()) {
        co_await cfg.tape->TimedLoadMedia(cfg.spare_tapes[next_spare++]);
        report->tapes_used.push_back(cfg.tape->tape()->label());
        report->final_media.push_back(cfg.tape->tape()->label());
        media_start = chunk->begin;
      }  // else fall through: the write fails with NoSpace below
    }
    Status st;
    co_await cfg.tape->TimedWrite(stream.subspan(chunk->begin, n), &st);
    if (!st.ok() && cfg.supervision != nullptr) {
      co_await RecoverTapeWrite(cfg.filer->env(), cfg.tape, stream,
                                chunk->begin, chunk->end, cfg.spare_tapes,
                                cfg.chunk_bytes, *cfg.supervision, &next_spare,
                                &media_start, report, &st);
    }
    if (!st.ok() && report->status.ok()) {
      report->status = st;
    }
    report->TouchPhase(chunk->phase, env->now(),
                       cfg.filer->cpu().BusyIntegral());
    report->phase(chunk->phase).tape_bytes += n;
  }
  writer_done->Notify();
}

// Producer half of a restore pipeline: reads the tape and publishes how
// many stream bytes have arrived, spanning onto the next media of a
// multi-volume set as each tape runs dry. Under supervision, read errors
// retry on the tape backoff schedule (a failed read does not advance the
// head, so a re-issue is exact).
Task TapeReaderProc(ReplayConfig cfg, uint64_t total_bytes,
                    Channel<uint64_t>* channel, JobReport* report) {
  SimEnvironment* env = cfg.filer->env();
  std::vector<uint8_t> scratch(cfg.chunk_bytes);
  size_t next_spare = 0;
  if (cfg.tape->loaded()) {
    report->tapes_used.push_back(cfg.tape->tape()->label());
  }
  uint64_t pos = 0;
  while (pos < total_bytes) {
    uint64_t remaining_on_tape =
        cfg.tape->loaded() ? cfg.tape->tape()->size() - cfg.tape->position()
                           : 0;
    if (remaining_on_tape == 0) {
      if (next_spare >= cfg.spare_tapes.size()) {
        if (report->status.ok()) {
          report->status = Corruption("multi-volume set ended early");
        }
        break;
      }
      co_await cfg.tape->TimedLoadMedia(cfg.spare_tapes[next_spare++]);
      report->tapes_used.push_back(cfg.tape->tape()->label());
      remaining_on_tape = cfg.tape->tape()->size();
    }
    const uint64_t n = std::min<uint64_t>(
        {cfg.chunk_bytes, total_bytes - pos, remaining_on_tape});
    if (cfg.qos.throttle != nullptr) {
      co_await cfg.qos.throttle->Acquire(n);
    }
    Status st;
    co_await cfg.tape->TimedRead(std::span(scratch).first(n), &st);
    if (!st.ok() && cfg.supervision != nullptr) {
      const RetryPolicy& retry = cfg.supervision->tape_retry;
      int attempt = 1;
      while (!st.ok() && attempt < retry.max_attempts) {
        ++report->faults.tape_errors;
        ++report->faults.tape_retries;
        TRACE_INSTANT(env, "faults", "tape.retry");
        co_await env->Delay(retry.BackoffBefore(attempt));
        ++attempt;
        co_await cfg.tape->TimedRead(std::span(scratch).first(n), &st);
      }
      if (!st.ok()) {
        ++report->faults.tape_errors;
      }
    }
    if (!st.ok() && report->status.ok()) {
      report->status = st;
    }
    pos += n;
    co_await channel->Send(pos);
  }
  channel->Close();
}

// Producer half of a ranged restore: seeks to each range and reads it,
// publishing the absolute stream offset reached so far. Watermarks stay
// monotone because ranges ascend; bytes inside the gaps are never touched —
// the tape moves O(needed), not O(stream). Read errors run the same retry
// ladder as the sequential reader.
Task RangedTapeReaderProc(ReplayConfig cfg, std::vector<StreamRange> ranges,
                          Channel<uint64_t>* channel, JobReport* report) {
  SimEnvironment* env = cfg.filer->env();
  std::vector<uint8_t> scratch(cfg.chunk_bytes);
  if (cfg.tape->loaded()) {
    const std::string& label = cfg.tape->tape()->label();
    if (report->tapes_used.empty() || report->tapes_used.back() != label) {
      report->tapes_used.push_back(label);
    }
  }
  for (const StreamRange& r : ranges) {
    Status st;
    co_await cfg.tape->TimedSeekTo(r.begin, &st);
    if (!st.ok()) {
      if (report->status.ok()) {
        report->status = st;
      }
      break;
    }
    uint64_t pos = r.begin;
    while (pos < r.end) {
      const uint64_t on_tape =
          cfg.tape->loaded()
              ? cfg.tape->tape()->size() - cfg.tape->position()
              : 0;
      if (on_tape == 0) {
        if (report->status.ok()) {
          report->status = Corruption("tape ended inside a restore range");
        }
        break;
      }
      const uint64_t n =
          std::min<uint64_t>({cfg.chunk_bytes, r.end - pos, on_tape});
      if (cfg.qos.throttle != nullptr) {
        co_await cfg.qos.throttle->Acquire(n);
      }
      co_await cfg.tape->TimedRead(std::span(scratch).first(n), &st);
      if (!st.ok() && cfg.supervision != nullptr) {
        const RetryPolicy& retry = cfg.supervision->tape_retry;
        int attempt = 1;
        while (!st.ok() && attempt < retry.max_attempts) {
          ++report->faults.tape_errors;
          ++report->faults.tape_retries;
          TRACE_INSTANT(env, "faults", "tape.retry");
          co_await env->Delay(retry.BackoffBefore(attempt));
          ++attempt;
          co_await cfg.tape->TimedRead(std::span(scratch).first(n), &st);
        }
        if (!st.ok()) {
          ++report->faults.tape_errors;
        }
      }
      if (!st.ok() && report->status.ok()) {
        report->status = st;
      }
      pos += n;
      co_await channel->Send(pos);
    }
  }
  channel->Close();
}

// Charges one event's disk reads, then signals its ready-event and frees a
// slot in the read-ahead window.
Task DiskFetch(ReplayConfig cfg, const IoEvent* event, JobReport* report,
               SimEvent* ready, Resource* window) {
  DiskFaultPolicy policy;
  const DiskFaultPolicy* pp = nullptr;
  if (cfg.supervision != nullptr) {
    policy = cfg.supervision->MakeDiskPolicy(&report->faults);
    pp = &policy;
  }
  Status error;
  co_await ChargeDiskAccess(cfg.filer->env(), cfg.volume, event->disk_reads,
                            /*parity_writes=*/false, pp, &error,
                            cfg.qos.io_priority);
  if (!error.ok() && report->status.ok()) {
    report->status = error;
  }
  ready->Notify();
  window->Release();
}

// Write-behind worker for the restore side.
Task DiskFlush(ReplayConfig cfg, std::vector<Vbn> writes,
               uint64_t seq_blocks, JobReport* report, Resource* window) {
  SimEnvironment* env = cfg.filer->env();
  DiskFaultPolicy policy;
  const DiskFaultPolicy* pp = nullptr;
  if (cfg.supervision != nullptr) {
    policy = cfg.supervision->MakeDiskPolicy(&report->faults);
    pp = &policy;
  }
  Status error;
  if (!writes.empty()) {
    co_await ChargeDiskAccess(env, cfg.volume, writes,
                              /*parity_writes=*/true, pp, &error,
                              cfg.qos.io_priority);
  } else if (seq_blocks > 0) {
    co_await ChargeSequentialWrites(env, cfg.volume, seq_blocks, pp, &error,
                                    cfg.qos.io_priority);
  }
  if (!error.ok() && report->status.ok()) {
    report->status = error;
  }
  window->Release();
}

}  // namespace

Task ReplayProducer(ReplayConfig cfg, const IoTrace* trace,
                    Channel<StreamChunk>* out, PhaseSpanner* spans,
                    JobReport* report) {
  SimEnvironment* env = cfg.filer->env();
  // Read-ahead: keep up to disk_window events' disk reads in flight; the
  // stream is still produced in order.
  const size_t n_events = trace->events.size();
  std::vector<std::unique_ptr<SimEvent>> ready(n_events);
  Resource window(env, static_cast<int64_t>(std::max<size_t>(
                           1, cfg.disk_window)), "readahead");
  size_t spawned = 0;
  auto SpawnFetchesUpTo = [&](size_t limit) -> Task {
    while (spawned < std::min(limit, n_events)) {
      const IoEvent& ev = trace->events[spawned];
      ready[spawned] = std::make_unique<SimEvent>(env);
      if (ev.disk_reads.empty()) {
        ready[spawned]->Notify();
      } else {
        co_await window.Acquire();
        env->Spawn(DiskFetch(cfg, &ev, report, ready[spawned].get(),
                             &window));
      }
      ++spawned;
    }
  };

  uint64_t sent = 0;
  for (size_t i = 0; i < n_events; ++i) {
    const IoEvent& e = trace->events[i];
    spans->Enter(e.phase);
    co_await SpawnFetchesUpTo(i + cfg.disk_window + 1);
    report->TouchPhase(e.phase, env->now(), cfg.filer->cpu().BusyIntegral());
    co_await ready[i]->Wait();
    report->phase(e.phase).disk_bytes += e.disk_reads.size() * kBlockSize;
    co_await cfg.filer->ChargeCpu(e.cpu, cfg.qos.io_priority);
    while (sent < e.stream_end) {
      const uint64_t n =
          std::min<uint64_t>(cfg.chunk_bytes, e.stream_end - sent);
      if (cfg.qos.throttle != nullptr) {
        co_await cfg.qos.throttle->Acquire(n);
      }
      co_await out->Send(StreamChunk{sent, sent + n, e.phase});
      sent += n;
    }
    report->TouchPhase(e.phase, env->now(), cfg.filer->cpu().BusyIntegral());
  }
}

Task ContentChunkAdapter(ReplayConfig cfg, const FrameMap* map,
                         Channel<StreamChunk>* in, Channel<StreamChunk>* out,
                         JobReport* report, SimEvent* done) {
  const SimDuration cpu_per_mb = cfg.content.EncodeCpuPerMb();
  uint64_t raw_done = 0;
  uint64_t cpu_charged = 0;
  uint64_t wire_sent = 0;
  while (true) {
    std::optional<StreamChunk> chunk = co_await in->Recv();
    if (!chunk.has_value()) {
      break;
    }
    // Encode CPU is priced per *raw* MB moved; the running total keeps the
    // charge exact across chunks of any size.
    raw_done += chunk->end - chunk->begin;
    const uint64_t cpu_due =
        static_cast<uint64_t>(cpu_per_mb) * raw_done / 1000000;
    if (cpu_due > cpu_charged) {
      co_await cfg.filer->cpu().Use(
          1, static_cast<SimDuration>(cpu_due - cpu_charged),
          cfg.qos.io_priority);
      report->content.encode_cpu_us += cpu_due - cpu_charged;
      cpu_charged = cpu_due;
    }
    const uint64_t wire_end = map->WireOf(chunk->end);
    if (wire_end > wire_sent) {
      // QoS paces post-stage wire bytes: the rate cap applies to what the
      // tape or link actually moves, not the pre-compression stream.
      if (cfg.qos.throttle != nullptr) {
        co_await cfg.qos.throttle->Acquire(wire_end - wire_sent);
      }
      co_await out->Send(StreamChunk{wire_sent, wire_end, chunk->phase});
      wire_sent = wire_end;
    }
  }
  out->Close();
  done->Notify();
}

Task ContentWatermarkAdapter(ReplayConfig cfg, const FrameMap* map,
                             std::vector<StreamRange> wire_ranges,
                             Channel<uint64_t>* in, Channel<uint64_t>* out,
                             JobReport* report, SimEvent* done) {
  if (wire_ranges.empty()) {
    wire_ranges.push_back(StreamRange{0, map->wire_total()});
  }
  const SimDuration cpu_per_mb = cfg.content.DecodeCpuPerMb();
  size_t range = 0;          // first range the watermark has not passed
  uint64_t completed_raw = 0;  // raw size of fully delivered ranges
  uint64_t cpu_charged = 0;
  while (true) {
    std::optional<uint64_t> watermark = co_await in->Recv();
    if (!watermark.has_value()) {
      break;
    }
    const uint64_t wire = *watermark;
    while (range < wire_ranges.size() && wire >= wire_ranges[range].end) {
      completed_raw += map->RawSizeOfWireRange(wire_ranges[range]);
      ++range;
    }
    // Raw bytes the ranges have actually moved so far — NOT RawAvailable
    // of the global offset, which would bill decode CPU for skipped gaps
    // in a resumed or single-file replay.
    uint64_t moved_raw = completed_raw;
    if (range < wire_ranges.size() && wire > wire_ranges[range].begin) {
      moved_raw += map->RawAvailable(wire) -
                   map->RawAvailable(wire_ranges[range].begin);
    }
    const uint64_t cpu_due =
        static_cast<uint64_t>(cpu_per_mb) * moved_raw / 1000000;
    if (cpu_due > cpu_charged) {
      co_await cfg.filer->cpu().Use(
          1, static_cast<SimDuration>(cpu_due - cpu_charged),
          cfg.qos.io_priority);
      report->content.decode_cpu_us += cpu_due - cpu_charged;
      cpu_charged = cpu_due;
    }
    co_await out->Send(map->RawAvailable(wire));
  }
  out->Close();
  done->Notify();
}

Task ReplayToTape(ReplayConfig cfg, const IoTrace* trace,
                  std::span<const uint8_t> stream, JobReport* report,
                  CountdownLatch* done) {
  SimEnvironment* env = cfg.filer->env();
  if (cfg.content.enabled()) {
    // Encode once, functionally; the tape stores the wire image while the
    // producer still replays the engine's raw-coordinate trace.
    Result<EncodeResult> encoded = StagePipeline(cfg.content).Encode(stream);
    if (!encoded.ok()) {
      if (report->status.ok()) {
        report->status = encoded.status();
      }
      done->CountDown();
      co_return;
    }
    const std::vector<uint8_t> wire = std::move(encoded->wire);
    const FrameMap map = std::move(encoded->map);
    report->content.Add(encoded->stats);

    Channel<StreamChunk> raw_channel(env, cfg.pipeline_depth);
    Channel<StreamChunk> wire_channel(env, cfg.pipeline_depth);
    SimEvent writer_done(env);
    SimEvent adapter_done(env);
    env->Spawn(TapeWriterProc(cfg, wire, &wire_channel, report,
                              &writer_done));
    env->Spawn(ContentChunkAdapter(cfg, &map, &raw_channel, &wire_channel,
                                   report, &adapter_done));
    // The adapter owns the throttle (wire-byte pacing); the producer must
    // not also acquire raw bytes from the same bucket.
    ReplayConfig producer_cfg = cfg;
    producer_cfg.qos.throttle = nullptr;
    PhaseSpanner spans(env, report->name);
    co_await ReplayProducer(producer_cfg, trace, &raw_channel, &spans,
                            report);
    raw_channel.Close();
    co_await adapter_done.Wait();
    co_await writer_done.Wait();
    spans.Close();
    report->stream_bytes += stream.size();
    done->CountDown();
    co_return;
  }
  Channel<StreamChunk> channel(env, cfg.pipeline_depth);
  SimEvent writer_done(env);
  env->Spawn(TapeWriterProc(cfg, stream, &channel, report, &writer_done));

  PhaseSpanner spans(env, report->name);
  co_await ReplayProducer(cfg, trace, &channel, &spans, report);
  channel.Close();
  co_await writer_done.Wait();
  // Close after the writer drains so the final phase's span covers the tape
  // tail, not just the last produced chunk.
  spans.Close();
  report->stream_bytes += stream.size();
  done->CountDown();
}

Task ReplayConsumer(ReplayConfig cfg, const IoTrace* trace,
                    uint64_t stream_bytes, Channel<uint64_t>* arrived,
                    PhaseSpanner* spans, JobReport* report) {
  SimEnvironment* env = cfg.filer->env();
  const auto window_depth =
      static_cast<int64_t>(std::max<size_t>(1, cfg.disk_window));
  Resource write_window(env, window_depth, "writebehind");

  uint64_t available = 0;
  uint64_t consumed = 0;
  for (const IoEvent& e : trace->events) {
    spans->Enter(e.phase);
    // Wait for the stream to deliver this event's bytes.
    while (available < e.stream_end) {
      std::optional<uint64_t> watermark = co_await arrived->Recv();
      if (!watermark.has_value()) {
        available = stream_bytes;
        break;
      }
      available = *watermark;
    }
    report->TouchPhase(e.phase, env->now(), cfg.filer->cpu().BusyIntegral());
    // With content stages, the tape/link moved wire bytes: attribute the
    // event's share in wire coordinates (exact at frame boundaries).
    uint64_t delta = e.stream_end - consumed;
    if (cfg.content_map != nullptr) {
      delta = cfg.content_map->WireOf(e.stream_end) -
              cfg.content_map->WireOf(consumed);
    }
    report->phase(e.phase).tape_bytes += delta;
    if (cfg.count_net_bytes) {
      report->phase(e.phase).net_bytes += delta;
    }
    consumed = e.stream_end;

    co_await cfg.filer->ChargeCpu(e.cpu, cfg.qos.io_priority);
    if (cfg.charge_nvram && e.nvram_bytes > 0) {
      co_await cfg.filer->ChargeNvram(e.nvram_bytes, cfg.qos.io_priority);
    }
    // Disk flushes proceed write-behind, bounded by the disk window.
    if (!e.disk_writes.empty()) {
      // The engine knows the exact addresses (image restore).
      co_await write_window.Acquire();
      env->Spawn(DiskFlush(cfg, e.disk_writes, 0, report, &write_window));
      report->phase(e.phase).disk_bytes +=
          e.disk_writes.size() * kBlockSize;
    } else if (e.blocks_written > 0) {
      // Write-anywhere flush: sequential burst plus CP meta amplification.
      const auto blocks = static_cast<uint64_t>(
          static_cast<double>(e.blocks_written) *
          (1.0 + cfg.write_meta_multiplier));
      co_await write_window.Acquire();
      env->Spawn(DiskFlush(cfg, {}, blocks, report, &write_window));
      report->phase(e.phase).disk_bytes += blocks * kBlockSize;
    }
    report->TouchPhase(e.phase, env->now(), cfg.filer->cpu().BusyIntegral());
  }
  // Drain any watermarks still queued (trailing stream padding) and wait
  // for outstanding write-behind flushes.
  while (true) {
    std::optional<uint64_t> watermark = co_await arrived->Recv();
    if (!watermark.has_value()) {
      break;
    }
  }
  co_await write_window.Acquire(window_depth);
  write_window.Release(window_depth);
}

Task ReplayFromTape(ReplayConfig cfg, const IoTrace* trace,
                    uint64_t stream_bytes, JobReport* report,
                    CountdownLatch* done) {
  SimEnvironment* env = cfg.filer->env();
  if (cfg.content_map != nullptr) {
    // The tape holds the wire image: read wire_total bytes, translate the
    // reader's wire watermarks back to raw for the consumer, charging the
    // decode stages' CPU along the way.
    Channel<uint64_t> wire_channel(env, cfg.pipeline_depth);
    Channel<uint64_t> raw_channel(env, cfg.pipeline_depth);
    SimEvent adapter_done(env);
    env->Spawn(TapeReaderProc(cfg, cfg.content_map->wire_total(),
                              &wire_channel, report));
    env->Spawn(ContentWatermarkAdapter(cfg, cfg.content_map, {},
                                       &wire_channel, &raw_channel, report,
                                       &adapter_done));
    PhaseSpanner spans(env, report->name);
    co_await ReplayConsumer(cfg, trace, stream_bytes, &raw_channel, &spans,
                            report);
    co_await adapter_done.Wait();
    spans.Close();
    report->stream_bytes += stream_bytes;
    done->CountDown();
    co_return;
  }
  Channel<uint64_t> channel(env, cfg.pipeline_depth);
  env->Spawn(TapeReaderProc(cfg, stream_bytes, &channel, report));

  PhaseSpanner spans(env, report->name);
  co_await ReplayConsumer(cfg, trace, stream_bytes, &channel, &spans, report);
  spans.Close();
  report->stream_bytes += stream_bytes;
  done->CountDown();
}

Task ReplayFromTapeRanges(ReplayConfig cfg, const IoTrace* trace,
                          std::vector<StreamRange> ranges,
                          uint64_t stream_bytes, JobReport* report,
                          CountdownLatch* done) {
  SimEnvironment* env = cfg.filer->env();
  if (cfg.content_map != nullptr) {
    // Resume/catalog offsets are raw; the tape holds wire frames. Translate
    // to the frame-aligned wire cover and read only that — the bounded-
    // replay guarantee now stated in post-stage coordinates.
    std::vector<StreamRange> wire_ranges =
        cfg.content_map->WireRangesOf(ranges);
    uint64_t moved = 0;
    for (const StreamRange& r : wire_ranges) {
      moved += r.size();
    }
    Channel<uint64_t> wire_channel(env, cfg.pipeline_depth);
    Channel<uint64_t> raw_channel(env, cfg.pipeline_depth);
    SimEvent adapter_done(env);
    env->Spawn(RangedTapeReaderProc(cfg, wire_ranges, &wire_channel, report));
    env->Spawn(ContentWatermarkAdapter(cfg, cfg.content_map,
                                       std::move(wire_ranges), &wire_channel,
                                       &raw_channel, report, &adapter_done));
    PhaseSpanner spans(env, report->name);
    co_await ReplayConsumer(cfg, trace, stream_bytes, &raw_channel, &spans,
                            report);
    co_await adapter_done.Wait();
    spans.Close();
    report->stream_bytes += moved;
    done->CountDown();
    co_return;
  }
  uint64_t moved = 0;
  for (const StreamRange& r : ranges) {
    moved += r.size();
  }
  Channel<uint64_t> channel(env, cfg.pipeline_depth);
  env->Spawn(RangedTapeReaderProc(cfg, std::move(ranges), &channel, report));

  PhaseSpanner spans(env, report->name);
  co_await ReplayConsumer(cfg, trace, stream_bytes, &channel, &spans, report);
  spans.Close();
  // Account only the bytes the tape actually moved, not the skipped gaps —
  // the number the bounded-replay guarantee is stated in.
  report->stream_bytes += moved;
  done->CountDown();
}

Task SnapshotPhase(Filer* filer, JobReport* report, JobPhase phase,
                   SimDuration duration, int priority) {
  SimEnvironment* env = filer->env();
  PhaseSpanner spans(env, report->name);
  spans.Enter(phase);
  report->TouchPhase(phase, env->now(), filer->cpu().BusyIntegral());
  // Duty-cycle the CPU at the target fraction in short slices so that
  // concurrent jobs are not starved for the whole window.
  const SimTime deadline = env->now() + duration;
  const SimDuration slice = 20 * kMillisecond;
  const auto busy_slice = static_cast<SimDuration>(
      static_cast<double>(slice) * filer->model().snapshot_cpu_fraction);
  while (env->now() < deadline) {
    co_await filer->cpu().Use(1, busy_slice, priority);
    const SimDuration idle =
        std::min<SimDuration>(slice - busy_slice, deadline - env->now());
    if (idle > 0) {
      co_await env->Delay(idle);
    }
  }
  report->TouchPhase(phase, env->now(), filer->cpu().BusyIntegral());
}

Task LogicalBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                      LogicalDumpOptions options,
                      LogicalBackupJobResult* result, CountdownLatch* done,
                      std::vector<Tape*> spare_tapes,
                      const SupervisionPolicy* supervision, BackupQos qos,
                      ContentConfig content) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Logical backup";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  const std::string snap =
      options.snapshot_name.empty() ? "dump.auto" : options.snapshot_name;
  options.snapshot_name = snap;
  report.status = fs->CreateSnapshot(snap);
  if (!report.status.ok()) {
    done->CountDown();
    co_return;
  }
  co_await SnapshotPhase(filer, &report, JobPhase::kCreateSnapshot,
                         filer->model().snapshot_create_time,
                         qos.io_priority);

  options.dump_time = env->now();
  if (supervision != nullptr && supervision->skip_unreadable_files) {
    // Graceful degradation: a logical dump can drop what it cannot read
    // and still produce a consistent stream; an image dump cannot.
    options.skip_unreadable = true;
  }
  Result<FsReader> reader = fs->SnapshotReader(snap);
  if (!reader.ok()) {
    report.status = reader.status();
    done->CountDown();
    co_return;
  }
  Result<LogicalDumpOutput> dump = RunLogicalDump(*reader, options);
  if (!dump.ok()) {
    report.status = dump.status();
    done->CountDown();
    co_return;
  }
  result->dump = std::move(*dump);
  report.faults.files_skipped += result->dump.stats.files_skipped;

  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = fs->volume();
  cfg.tape = tape;
  cfg.spare_tapes = std::move(spare_tapes);
  cfg.supervision = supervision;
  cfg.qos = qos;
  cfg.content = content;
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayToTape(cfg, &result->dump.trace, result->dump.stream,
                          &report, &replay_done));
  co_await replay_done.Wait();

  Status del = fs->DeleteSnapshot(snap);
  if (!del.ok() && report.status.ok()) {
    report.status = del;
  }
  co_await SnapshotPhase(filer, &report, JobPhase::kDeleteSnapshot,
                         filer->model().snapshot_delete_time,
                         qos.io_priority);

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->dump.stats.data_blocks * kBlockSize;
  done->CountDown();
}

Task LogicalRestoreJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                       LogicalRestoreOptions options, bool bypass_nvram,
                       LogicalRestoreJobResult* result, CountdownLatch* done,
                       std::vector<Tape*> spare_tapes,
                       const SupervisionPolicy* supervision,
                       ContentConfig content) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = bypass_nvram ? "Logical restore (NVRAM bypass)"
                             : "Logical restore";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  if (!tape->loaded()) {
    report.status = FailedPrecondition("no tape loaded for restore");
    done->CountDown();
    co_return;
  }
  // A multi-volume set restores as the concatenation of its media.
  std::vector<uint8_t> spanned;
  std::span<const uint8_t> stream = tape->tape()->contents();
  if (!spare_tapes.empty()) {
    spanned.assign(stream.begin(), stream.end());
    for (Tape* t : spare_tapes) {
      spanned.insert(spanned.end(), t->contents().begin(),
                     t->contents().end());
    }
    stream = spanned;
  }

  // With content stages, the media hold the wire image: invert the pipeline
  // first (verifying every store-backed frame) so the restore engine sees
  // the exact raw stream the dump produced.
  FrameMap content_map;
  std::vector<uint8_t> decoded;
  if (content.enabled()) {
    Result<FrameMap> map = FrameMap::FromWire(stream);
    if (!map.ok()) {
      report.status = map.status();
      done->CountDown();
      co_return;
    }
    Result<std::vector<uint8_t>> raw =
        StagePipeline(content).Decode(stream, &report.content);
    if (!raw.ok()) {
      report.status = raw.status();
      done->CountDown();
      co_return;
    }
    content_map = std::move(*map);
    decoded = std::move(*raw);
    stream = decoded;
  }

  fs->MarkCpCounters();
  Result<LogicalRestoreOutput> restored =
      RunLogicalRestore(fs, stream, options);
  if (!restored.ok()) {
    report.status = restored.status();
    done->CountDown();
    co_return;
  }
  result->restore = std::move(*restored);

  // Meta-data write amplification measured from the real consistency
  // points the functional restore performed.
  const uint64_t data_writes = fs->cp_data_writes_since_mark();
  const uint64_t meta_writes = fs->cp_meta_writes_since_mark();
  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = fs->volume();
  cfg.tape = tape;
  cfg.spare_tapes = std::move(spare_tapes);
  cfg.supervision = supervision;
  cfg.charge_nvram = !bypass_nvram;
  cfg.write_meta_multiplier =
      data_writes > 0
          ? static_cast<double>(meta_writes) / static_cast<double>(data_writes)
          : 0.5;
  if (content.enabled()) {
    cfg.content = content;
    cfg.content_map = &content_map;
  }

  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayFromTape(cfg, &result->restore.trace, stream.size(),
                            &report, &replay_done));
  co_await replay_done.Wait();

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->restore.stats.bytes_restored;
  done->CountDown();
}

Task ResumableLogicalRestoreJob(Filer* filer, std::unique_ptr<Filesystem>* fs,
                                Volume* volume, TapeDrive* tape,
                                LogicalRestoreOptions options,
                                bool bypass_nvram,
                                const SupervisionPolicy* supervision,
                                ResumableRestoreConfig resume,
                                ResumableRestoreJobResult* result,
                                CountdownLatch* done) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Resumable logical restore";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  if (!tape->loaded()) {
    report.status = FailedPrecondition("no tape loaded for restore");
    done->CountDown();
    co_return;
  }
  if (resume.catalog == nullptr) {
    report.status = InvalidArgument("resumable restore needs a catalog");
    done->CountDown();
    co_return;
  }
  // Single-media only: the ranged reads address the mounted tape directly.
  std::span<const uint8_t> stream = tape->tape()->contents();

  // Decode the wire image once (it is a pure function of the media); each
  // incarnation's ranged replay still pays tape and decode CPU only for the
  // wire frames its resume actually needs.
  FrameMap content_map;
  std::vector<uint8_t> decoded;
  const bool has_content = resume.content.enabled();
  if (has_content) {
    Result<FrameMap> map = FrameMap::FromWire(stream);
    if (!map.ok()) {
      report.status = map.status();
      done->CountDown();
      co_return;
    }
    Result<std::vector<uint8_t>> raw =
        StagePipeline(resume.content).Decode(stream, &report.content);
    if (!raw.ok()) {
      report.status = raw.status();
      done->CountDown();
      co_return;
    }
    content_map = std::move(*map);
    decoded = std::move(*raw);
    stream = decoded;
  }

  options.catalog = resume.catalog;
  options.kill = resume.kill;
  options.checkpoint_every = resume.checkpoint_every;

  static const SupervisionPolicy kDefaultPolicy;
  const RetryPolicy& restart = (supervision != nullptr ? *supervision
                                                       : kDefaultPolicy)
                                   .restart_retry;
  // One trace spans every incarnation: each supervised restart continues
  // the same trace id with a bumped incarnation label.
  TraceContext ctx;
  if (Tracer* tracer = env->tracer()) {
    ctx = tracer->StartTrace();
  }
  int attempt = 0;
  while (true) {
    ScopedTraceSpan incarnation_span(
        env->tracer(), ("job:" + report.name).c_str(),
        "incarnation#" + std::to_string(attempt), ctx);
    ++result->attempts;
    options.resume = attempt > 0;
    (*fs)->MarkCpCounters();
    Result<LogicalRestoreOutput> restored =
        RunLogicalRestore(fs->get(), stream, options);
    if (!restored.ok()) {
      report.status = restored.status();
      break;
    }
    report.resume.bytes_skipped += restored->stats.bytes_skipped;
    report.resume.entries_skipped += restored->stats.entries_skipped;
    report.resume.checkpoints += restored->stats.checkpoints;
    if (attempt > 0) {
      report.resume.bytes_replayed += restored->stats.bytes_replayed;
    }
    report.data_bytes += restored->stats.bytes_restored;

    const uint64_t data_writes = (*fs)->cp_data_writes_since_mark();
    const uint64_t meta_writes = (*fs)->cp_meta_writes_since_mark();
    ReplayConfig cfg;
    cfg.filer = filer;
    cfg.volume = volume;
    cfg.tape = tape;
    cfg.supervision = supervision;
    cfg.charge_nvram = !bypass_nvram;
    cfg.write_meta_multiplier =
        data_writes > 0 ? static_cast<double>(meta_writes) /
                              static_cast<double>(data_writes)
                        : 0.5;
    if (has_content) {
      cfg.content = resume.content;
      cfg.content_map = &content_map;
    }
    CountdownLatch replay_done(env, 1);
    env->Spawn(ReplayFromTapeRanges(cfg, &restored->trace,
                                    restored->consumed_ranges, stream.size(),
                                    &report, &replay_done));
    co_await replay_done.Wait();

    const bool interrupted = restored->interrupted;
    result->restore = std::move(*restored);
    if (!interrupted) {
      break;  // this incarnation finished the restore
    }
    // The process died mid-stream: reboot, remount the last consistency
    // point, back off on the restart schedule, and resume from the catalog.
    report.resume.resumes++;
    if (Tracer* tracer = env->tracer()) {
      tracer->Instant(tracer->Track("faults"), "restore.kill", ctx);
    }
    if (FlightRecorder* recorder = env->flight_recorder()) {
      recorder->RecordFault(
          "crash", report.name,
          "kill at offset " + std::to_string(result->restore.stopped_at) +
              ", incarnation " + std::to_string(attempt));
    }
    ctx = ctx.NextIncarnation();
    ++attempt;
    if (attempt >= restart.max_attempts) {
      report.status = Exhausted("restore restart budget exhausted");
      break;
    }
    co_await env->Delay(restart.BackoffBefore(attempt));
    if (resume.remount_between_attempts) {
      fs->reset();
      Result<std::unique_ptr<Filesystem>> mounted =
          Filesystem::Mount(volume, env);
      if (!mounted.ok()) {
        report.status = mounted.status();
        break;
      }
      *fs = std::move(*mounted);
    }
  }

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  // Chaos-kill black box: a run that had to resume leaves a flight record
  // whose kill points and replayed-range stats mirror JobReport.resume.
  if (FlightRecorder* recorder = env->flight_recorder();
      recorder != nullptr && report.resume.resumes > 0) {
    recorder->AddStateProvider("resumable_restore", [&](JsonWriter* w) {
      w->BeginObject()
          .Field("job", report.name)
          .Field("attempts", static_cast<uint64_t>(result->attempts))
          .Field("resumes", report.resume.resumes)
          .Field("bytes_replayed", report.resume.bytes_replayed)
          .Field("bytes_skipped", report.resume.bytes_skipped)
          .Field("entries_skipped", report.resume.entries_skipped)
          .Field("checkpoints", report.resume.checkpoints)
          .Field("status_ok", report.status.ok())
          .EndObject();
    });
    const Status dumped = recorder->Dump("restore_resume");
    if (!dumped.ok() && report.status.ok()) {
      report.status = dumped;
    }
    recorder->RemoveStateProvider("resumable_restore");
  }
  done->CountDown();
}

Task ImageBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                    ImageDumpOptions options, bool delete_snapshot_after,
                    ImageBackupJobResult* result, CountdownLatch* done,
                    std::vector<Tape*> spare_tapes,
                    const SupervisionPolicy* supervision, BackupQos qos,
                    ContentConfig content) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Physical backup";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  const std::string snap =
      options.snapshot_name.empty() ? "image.auto" : options.snapshot_name;
  options.snapshot_name = snap;
  // The snapshot may already exist when several parallel part-jobs share
  // one quiesce point; only the first creates it.
  const bool created_here = !fs->FindSnapshot(snap).ok();
  if (created_here) {
    report.status = fs->CreateSnapshot(snap);
    if (!report.status.ok()) {
      done->CountDown();
      co_return;
    }
    co_await SnapshotPhase(filer, &report, JobPhase::kCreateSnapshot,
                           filer->model().snapshot_create_time,
                           qos.io_priority);
  }

  options.dump_time = env->now();
  Result<ImageDumpOutput> dump = RunImageDump(fs->volume(), options);
  if (!dump.ok()) {
    report.status = dump.status();
    done->CountDown();
    co_return;
  }
  result->dump = std::move(*dump);

  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = fs->volume();
  cfg.tape = tape;
  cfg.spare_tapes = std::move(spare_tapes);
  cfg.supervision = supervision;
  cfg.qos = qos;
  cfg.content = content;
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayToTape(cfg, &result->dump.trace, result->dump.stream,
                          &report, &replay_done));
  co_await replay_done.Wait();

  if (delete_snapshot_after && created_here) {
    Status del = fs->DeleteSnapshot(snap);
    if (!del.ok() && report.status.ok()) {
      report.status = del;
    }
    co_await SnapshotPhase(filer, &report, JobPhase::kDeleteSnapshot,
                           filer->model().snapshot_delete_time,
                           qos.io_priority);
  }

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->dump.stats.blocks_dumped * kBlockSize;
  done->CountDown();
}

Task ImageRestoreJob(Filer* filer, Volume* volume, TapeDrive* tape,
                     ImageRestoreJobResult* result, CountdownLatch* done,
                     std::vector<Tape*> spare_tapes,
                     const SupervisionPolicy* supervision,
                     ContentConfig content) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Physical restore";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  if (!tape->loaded()) {
    report.status = FailedPrecondition("no tape loaded for restore");
    done->CountDown();
    co_return;
  }
  // A multi-media image restores as the concatenation of its media.
  std::vector<uint8_t> spanned;
  std::span<const uint8_t> stream = tape->tape()->contents();
  if (!spare_tapes.empty()) {
    spanned.assign(stream.begin(), stream.end());
    for (Tape* t : spare_tapes) {
      spanned.insert(spanned.end(), t->contents().begin(),
                     t->contents().end());
    }
    stream = spanned;
  }
  FrameMap content_map;
  std::vector<uint8_t> decoded;
  if (content.enabled()) {
    Result<FrameMap> map = FrameMap::FromWire(stream);
    if (!map.ok()) {
      report.status = map.status();
      done->CountDown();
      co_return;
    }
    Result<std::vector<uint8_t>> raw =
        StagePipeline(content).Decode(stream, &report.content);
    if (!raw.ok()) {
      report.status = raw.status();
      done->CountDown();
      co_return;
    }
    content_map = std::move(*map);
    decoded = std::move(*raw);
    stream = decoded;
  }
  Result<ImageRestoreOutput> restored = RunImageRestore(volume, stream);
  if (!restored.ok()) {
    report.status = restored.status();
    done->CountDown();
    co_return;
  }
  result->restore = std::move(*restored);

  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = volume;
  cfg.tape = tape;
  cfg.spare_tapes = std::move(spare_tapes);
  cfg.supervision = supervision;
  cfg.charge_nvram = false;  // "bypass the NVRAM ... further enhancing
                             // performance"
  if (content.enabled()) {
    cfg.content = content;
    cfg.content_map = &content_map;
  }
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayFromTape(cfg, &result->restore.trace, stream.size(),
                            &report, &replay_done));
  co_await replay_done.Wait();

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes =
      result->restore.stats.blocks_restored * kBlockSize;
  done->CountDown();
}

}  // namespace bkup

// Backup and restore *jobs*: coroutine pipelines that run the functional
// engines and replay their I/O traces through the simulated filer.
//
// A job has the structure of WAFL's real dump path — a producer touching
// disks and CPU, a bounded buffer, and a consumer streaming a tape drive:
//
//     [disk reads + CPU] -> Channel<chunk> -> [tape writes]      (backup)
//     [tape reads] -> Channel<watermark> -> [CPU/NVRAM + disk]   (restore)
//
// Because the stages share the filer's CPU, the NVRAM port, the disk arms
// and each tape's streaming behaviour, the paper's phenomena — tape
// bottleneck at one drive, disk/CPU saturation of parallel logical dumps,
// near-linear physical scaling — emerge from the simulation rather than
// being asserted.
#ifndef BKUP_BACKUP_JOBS_H_
#define BKUP_BACKUP_JOBS_H_

#include <memory>
#include <span>
#include <string>

#include "src/backup/charge.h"
#include "src/backup/filer.h"
#include "src/backup/report.h"
#include "src/content/content.h"
#include "src/block/tape.h"
#include "src/dump/logical_dump.h"
#include "src/dump/logical_restore.h"
#include "src/fs/filesystem.h"
#include "src/image/image_dump.h"
#include "src/sim/channel.h"
#include "src/sim/sync.h"
#include "src/sim/throttle.h"

namespace bkup {

struct SupervisionPolicy;  // src/backup/supervisor.h
class Tracer;              // src/obs/trace.h

// Backup QoS (DESIGN.md §15): how much a dump may interfere with live
// foreground traffic. `throttle` caps the dump's stream rate (the producer
// acquires every chunk's bytes from the bucket before moving them);
// `io_priority` demotes the dump's CPU, NVRAM and disk-arm acquisitions to
// the background class, so queued foreground requests are always served
// first. The default is the pre-QoS behaviour: unthrottled, equal priority.
struct BackupQos {
  BackupThrottle* throttle = nullptr;
  int io_priority = kPriorityForeground;
};

struct ReplayConfig {
  Filer* filer = nullptr;
  Volume* volume = nullptr;
  TapeDrive* tape = nullptr;
  // Multi-volume dumps: when the mounted tape fills, the next media in this
  // list is loaded (paying the stacker's load time) and the stream
  // continues — the operator-feeding-tapes model of dump(8). The same list,
  // in the same order, must be supplied to the restore replay.
  std::vector<Tape*> spare_tapes;
  // Logical restore pays the NVRAM log; image restore bypasses it.
  bool charge_nvram = false;
  // Extra meta-data blocks written per data block at consistency points
  // (measured from the functional run's CP reports).
  double write_meta_multiplier = 0.0;
  // Pipeline buffer pool: chunks in flight between producer and consumer.
  size_t pipeline_depth = 8;
  uint64_t chunk_bytes = 256 * kKiB;
  // Outstanding disk operations: dump-side read-ahead (the kernel dump
  // "generates its own read-ahead policy") and restore-side write-behind
  // (consistency points flush asynchronously).
  size_t disk_window = 8;
  // Fault recovery: when set, disk accesses retry/reconstruct and tape
  // errors retry/remount per the policy, charging the work to the report's
  // FaultCounters. Null = fail on first error (the pre-supervision model).
  const SupervisionPolicy* supervision = nullptr;
  // Remote jobs: the stream crosses a NetLink, so the consumer attributes
  // arriving bytes to the phase's net_bytes as well (link MB/s columns).
  bool count_net_bytes = false;
  // Backup QoS: stream-rate cap and device scheduling class for every charge
  // this replay makes (see BackupQos above).
  BackupQos qos;
  // Content stages (DESIGN.md §16). Backup side: ReplayToTape/ReplayToNet
  // encode the stream when any stage is enabled, so tapes and links move
  // *wire* bytes and the throttle paces post-stage rates.
  ContentConfig content;
  // Restore side: the wire image's coordinate map. When set, the tape/net
  // readers move wire bytes, watermarks are translated back to raw through
  // a ContentWatermarkAdapter, and per-phase tape/net byte counts are wire
  // deltas. The caller decodes the wire image before replay (the engines
  // always see raw bytes).
  const FrameMap* content_map = nullptr;
};

// ------------------------------------------------ replay building blocks ---
// The halves ReplayToTape/ReplayFromTape are composed from, exposed so the
// remote jobs (src/backup/remote.h) can splice a network between producer
// and consumer without duplicating the replay logic.

// One pipeline chunk: stream bytes [begin, end) produced under `phase`.
struct StreamChunk {
  uint64_t begin;
  uint64_t end;
  JobPhase phase;
};

// Keeps one span open per job track, closing the previous phase's span and
// opening the next as a replay loop crosses phase boundaries. The track is
// "job:<report name>", so each (uniquely named) job gets its own timeline
// row and phases appear as contiguous spans along it. No-op without a tracer.
class PhaseSpanner {
 public:
  PhaseSpanner(SimEnvironment* env, const std::string& job_name);
  ~PhaseSpanner();
  PhaseSpanner(const PhaseSpanner&) = delete;
  PhaseSpanner& operator=(const PhaseSpanner&) = delete;

  void Enter(JobPhase phase);
  void Close();

 private:
  Tracer* tracer_;
  uint32_t track_ = 0;
  JobPhase current_ = JobPhase::kCount;
};

// Producer half of a backup replay: charges read-ahead disk fetches and CPU
// per trace event and emits the stream as ordered chunks on `out`. Does not
// close the channel — the caller composes the shutdown order.
Task ReplayProducer(ReplayConfig cfg, const IoTrace* trace,
                    Channel<StreamChunk>* out, PhaseSpanner* spans,
                    JobReport* report);

// Consumer half of a restore replay: waits for the `arrived` watermark
// (stream bytes delivered so far) to cover each trace event, then charges
// CPU, NVRAM and write-behind disk flushes. Drains the watermark channel and
// settles outstanding flushes before returning.
Task ReplayConsumer(ReplayConfig cfg, const IoTrace* trace,
                    uint64_t stream_bytes, Channel<uint64_t>* arrived,
                    PhaseSpanner* spans, JobReport* report);

// Content-stage adapters: spliced between the replay halves when content
// stages are on. The chunk adapter translates raw producer chunks into wire
// chunks through the FrameMap, charging the enabled encode stages' CPU per
// raw MB at the replay's priority and pacing the QoS throttle on the
// post-stage wire bytes (the producer's own throttle must be cleared).
// Closes `out` and notifies `done` when `in` drains.
Task ContentChunkAdapter(ReplayConfig cfg, const FrameMap* map,
                         Channel<StreamChunk>* in, Channel<StreamChunk>* out,
                         JobReport* report, SimEvent* done);

// The inverse: wire-offset watermarks from a tape/net reader become raw
// watermarks for ReplayConsumer. Decode CPU is charged only for raw bytes
// the wire ranges actually moved — a resumed or single-file replay never
// pays decode for skipped gaps. Empty `wire_ranges` means the whole stream.
Task ContentWatermarkAdapter(ReplayConfig cfg, const FrameMap* map,
                             std::vector<StreamRange> wire_ranges,
                             Channel<uint64_t>* in, Channel<uint64_t>* out,
                             JobReport* report, SimEvent* done);

// Retry/remount ladder for a failed tape write of stream[begin, end). On
// entry *st holds the error; transient errors back off and re-issue, and an
// error outliving the retry budget abandons the mounted media for the next
// spare and rewrites from the checkpoint (*media_start). Exposed for the
// remote tape writer on the tape-server side of a link.
Task RecoverTapeWrite(SimEnvironment* env, TapeDrive* tape,
                      std::span<const uint8_t> stream, uint64_t begin,
                      uint64_t end, std::span<Tape* const> spares,
                      uint64_t chunk_bytes, const SupervisionPolicy& policy,
                      size_t* next_spare, uint64_t* media_start,
                      JobReport* report, Status* st);

// Replays a dump-side trace: charges disk reads and CPU per event and
// streams the produced bytes to the tape. Accumulates phase stats into
// `report` (does not set the report's envelope fields).
Task ReplayToTape(ReplayConfig cfg, const IoTrace* trace,
                  std::span<const uint8_t> stream, JobReport* report,
                  CountdownLatch* done);

// Replays a restore-side trace: reads the stream back off the tape and
// charges CPU, NVRAM, and disk writes as each event's bytes arrive.
Task ReplayFromTape(ReplayConfig cfg, const IoTrace* trace,
                    uint64_t stream_bytes, JobReport* report,
                    CountdownLatch* done);

// Ranged variant for catalog-driven restores: moves only `ranges` off the
// tape (seek/read ladders, ascending), publishing absolute stream offsets as
// watermarks, so resumed and single-file restores pay O(needed bytes) of
// tape time instead of O(stream). The trace's events must all fall inside
// the ranges (the engine's consumed_ranges guarantee). Single-media only:
// ranges address the mounted tape, not a spanned set.
Task ReplayFromTapeRanges(ReplayConfig cfg, const IoTrace* trace,
                          std::vector<StreamRange> ranges,
                          uint64_t stream_bytes, JobReport* report,
                          CountdownLatch* done);

// ------------------------------------------------------- complete jobs ---

struct LogicalBackupJobResult {
  LogicalDumpOutput dump;
  JobReport report;
};

// Snapshot create -> 4-phase dump to tape -> snapshot delete (the exact
// stage sequence of Table 3's "Logical Dump" rows). `qos` caps/demotes the
// dump when foreground traffic must stay responsive.
Task LogicalBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                      LogicalDumpOptions options,
                      LogicalBackupJobResult* result, CountdownLatch* done,
                      std::vector<Tape*> spare_tapes = {},
                      const SupervisionPolicy* supervision = nullptr,
                      BackupQos qos = {}, ContentConfig content = {});

struct LogicalRestoreJobResult {
  LogicalRestoreOutput restore;
  JobReport report;
};

// Restores the stream recorded on `tape` through the file system. With
// `bypass_nvram`, models the paper's footnote-2 variant ("Modifying WAFL's
// logical restore to avoid NVRAM is in the works").
Task LogicalRestoreJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                       LogicalRestoreOptions options, bool bypass_nvram,
                       LogicalRestoreJobResult* result, CountdownLatch* done,
                       std::vector<Tape*> spare_tapes = {},
                       const SupervisionPolicy* supervision = nullptr,
                       ContentConfig content = {});

// Crash-resumable restore: how the supervised job recovers a killed restore
// process.
struct ResumableRestoreConfig {
  // The dump's offset index — the recovery authority. Required.
  const TapeCatalog* catalog = nullptr;
  // Crash injection (normally a CrashInjector from src/faults); null means
  // the first attempt simply completes.
  RestoreKillHook* kill = nullptr;
  // Mid-run consistency-point cadence passed to the engine.
  uint32_t checkpoint_every = 32;
  // Model the full reboot: drop the in-memory file system between attempts
  // and remount the volume's last consistency point.
  bool remount_between_attempts = true;
  // Content stages the backup ran: the tape holds a wire image, which each
  // incarnation decodes before resuming; catalog offsets stay raw, replay
  // ranges are translated to post-stage wire coordinates through the
  // FrameMap.
  ContentConfig content;
};

struct ResumableRestoreJobResult {
  LogicalRestoreOutput restore;  // the last attempt (the one that finished)
  JobReport report;
  uint32_t attempts = 0;  // process incarnations run
};

// Runs a logical restore that survives process kills: each attempt resumes
// from the catalog diff of the partially-restored tree, replaying only the
// missing suffix through a ranged tape replay. Between attempts the file
// system is remounted (crash-reboot) and the supervisor's restart_retry
// schedule paces the restarts. `fs` is taken by pointer-to-owner because a
// remount replaces the Filesystem object.
Task ResumableLogicalRestoreJob(Filer* filer, std::unique_ptr<Filesystem>* fs,
                                Volume* volume, TapeDrive* tape,
                                LogicalRestoreOptions options,
                                bool bypass_nvram,
                                const SupervisionPolicy* supervision,
                                ResumableRestoreConfig resume,
                                ResumableRestoreJobResult* result,
                                CountdownLatch* done);

struct ImageBackupJobResult {
  ImageDumpOutput dump;
  JobReport report;
};

// Snapshot create -> block-order image dump to tape [-> snapshot delete].
// Keep the snapshot (delete_snapshot_after = false) when it will base a
// later incremental.
Task ImageBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                    ImageDumpOptions options, bool delete_snapshot_after,
                    ImageBackupJobResult* result, CountdownLatch* done,
                    std::vector<Tape*> spare_tapes = {},
                    const SupervisionPolicy* supervision = nullptr,
                    BackupQos qos = {}, ContentConfig content = {});

struct ImageRestoreJobResult {
  ImageRestoreOutput restore;
  JobReport report;
};

// Restores an image stream from `tape` straight through the RAID layer.
// A multi-media image (after a supervised backup's remounts) restores as
// the concatenation of `tape`'s media and `spare_tapes`.
Task ImageRestoreJob(Filer* filer, Volume* volume, TapeDrive* tape,
                     ImageRestoreJobResult* result, CountdownLatch* done,
                     std::vector<Tape*> spare_tapes = {},
                     const SupervisionPolicy* supervision = nullptr,
                     ContentConfig content = {});

// Charges a snapshot create/delete window (~30 s at ~50% CPU) and records
// it as `phase` in the report. Exposed for composed multi-tape jobs. The
// duty-cycled CPU slices run at `priority`.
Task SnapshotPhase(Filer* filer, JobReport* report, JobPhase phase,
                   SimDuration duration, int priority = kPriorityForeground);

}  // namespace bkup

#endif  // BKUP_BACKUP_JOBS_H_

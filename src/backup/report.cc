#include "src/backup/report.h"

#include <algorithm>

#include "src/obs/json.h"

namespace bkup {

namespace {
double Clamp01(double u) { return u < 0.0 ? 0.0 : (u > 1.0 ? 1.0 : u); }
}  // namespace

double PhaseStats::DiskMBps() const {
  const SimDuration e = elapsed();
  if (e <= 0) {
    return 0.0;
  }
  return BytesPerSecToMBps(static_cast<double>(disk_bytes) / SimToSeconds(e));
}

double PhaseStats::TapeMBps() const {
  const SimDuration e = elapsed();
  if (e <= 0) {
    return 0.0;
  }
  return BytesPerSecToMBps(static_cast<double>(tape_bytes) / SimToSeconds(e));
}

double PhaseStats::NetMBps() const {
  const SimDuration e = elapsed();
  if (e <= 0) {
    return 0.0;
  }
  return BytesPerSecToMBps(static_cast<double>(net_bytes) / SimToSeconds(e));
}

void FaultCounters::Add(const FaultCounters& o) {
  disk_io_errors += o.disk_io_errors;
  disk_retries += o.disk_retries;
  reconstruction_reads += o.reconstruction_reads;
  spare_disks_used += o.spare_disks_used;
  tape_errors += o.tape_errors;
  tape_retries += o.tape_retries;
  tape_remounts += o.tape_remounts;
  bytes_rewritten += o.bytes_rewritten;
  files_skipped += o.files_skipped;
  link_errors += o.link_errors;
  link_retransmits += o.link_retransmits;
  link_reconnects += o.link_reconnects;
  link_bytes_resent += o.link_bytes_resent;
}

void ResumeStats::Add(const ResumeStats& o) {
  resumes += o.resumes;
  bytes_replayed += o.bytes_replayed;
  bytes_skipped += o.bytes_skipped;
  entries_skipped += o.entries_skipped;
  checkpoints += o.checkpoints;
}

void JobReport::TouchPhase(JobPhase p, SimTime now, int64_t cpu_busy) {
  PhaseStats& stats = phase(p);
  if (!stats.active()) {
    stats.start = now;
    stats.cpu_busy_start = cpu_busy;
  }
  stats.end = std::max(stats.end, now);
  stats.cpu_busy_end = cpu_busy;
}

double JobReport::CpuUtilization() const {
  const SimDuration e = elapsed();
  if (e <= 0) {
    return 0.0;
  }
  return Clamp01(static_cast<double>(cpu_busy_end - cpu_busy_start) /
                 static_cast<double>(e));
}

uint64_t JobReport::total_disk_bytes() const {
  uint64_t n = 0;
  for (const PhaseStats& p : phases) {
    n += p.disk_bytes;
  }
  return n;
}

uint64_t JobReport::total_tape_bytes() const {
  uint64_t n = 0;
  for (const PhaseStats& p : phases) {
    n += p.tape_bytes;
  }
  return n;
}

uint64_t JobReport::total_net_bytes() const {
  uint64_t n = 0;
  for (const PhaseStats& p : phases) {
    n += p.net_bytes;
  }
  return n;
}

double JobReport::StreamCpuUtilization() const {
  const SimDuration e = StreamElapsed();
  if (e <= 0) {
    return 0.0;
  }
  int64_t busy = cpu_busy_end - cpu_busy_start;
  for (const JobPhase p :
       {JobPhase::kCreateSnapshot, JobPhase::kDeleteSnapshot}) {
    const PhaseStats& s = phase(p);
    if (s.active()) {
      busy -= s.cpu_busy_end - s.cpu_busy_start;
    }
  }
  return Clamp01(static_cast<double>(busy) / static_cast<double>(e));
}

double JobReport::DiskMBps() const {
  const SimDuration e = StreamElapsed();
  if (e <= 0) {
    return 0.0;
  }
  return BytesPerSecToMBps(static_cast<double>(total_disk_bytes()) /
                           SimToSeconds(e));
}

double JobReport::TapeMBps() const {
  const SimDuration e = StreamElapsed();
  if (e <= 0) {
    return 0.0;
  }
  return BytesPerSecToMBps(static_cast<double>(total_tape_bytes()) /
                           SimToSeconds(e));
}

double JobReport::NetMBps() const {
  const SimDuration e = StreamElapsed();
  if (e <= 0) {
    return 0.0;
  }
  return BytesPerSecToMBps(static_cast<double>(total_net_bytes()) /
                           SimToSeconds(e));
}

void JobReport::PrintSummaryRow(FILE* out) const {
  std::fprintf(out, "%-24s %12s %10.2f %10.1f\n", name.c_str(),
               FormatDuration(elapsed()).c_str(), MBps(), GBph());
}

void JobReport::PrintPhaseRows(FILE* out) const {
  for (int i = 0; i < static_cast<int>(JobPhase::kCount); ++i) {
    const PhaseStats& p = phases[i];
    if (!p.active() || p.elapsed() <= 0) {
      continue;
    }
    std::fprintf(out, "  %-32s %14s %8s  disk %7.2f MB/s  tape %7.2f MB/s",
                 JobPhaseName(static_cast<JobPhase>(i)),
                 FormatDuration(p.elapsed()).c_str(),
                 FormatPercent(p.CpuUtilization()).c_str(), p.DiskMBps(),
                 p.TapeMBps());
    if (p.net_bytes > 0) {
      std::fprintf(out, "  net %7.2f MB/s", p.NetMBps());
    }
    std::fprintf(out, "\n");
  }
}

void JobReport::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("name", name);
  w->Field("status", status.ok() ? "OK" : status.ToString());
  w->Field("start_s", SimToSeconds(start_time));
  w->Field("elapsed_s", SimToSeconds(elapsed()));
  w->Field("stream_elapsed_s", SimToSeconds(StreamElapsed()));
  w->Field("mb_per_s", MBps());
  w->Field("gb_per_h", GBph());
  w->Field("cpu_utilization", CpuUtilization());
  w->Field("stream_cpu_utilization", StreamCpuUtilization());
  w->Field("disk_mb_per_s", DiskMBps());
  w->Field("tape_mb_per_s", TapeMBps());
  w->Field("net_mb_per_s", NetMBps());
  w->Field("stream_bytes", stream_bytes);
  w->Field("data_bytes", data_bytes);
  w->Key("tapes_used").BeginArray();
  for (const std::string& t : tapes_used) {
    w->String(t);
  }
  w->EndArray();
  w->Key("final_media").BeginArray();
  for (const std::string& t : final_media) {
    w->String(t);
  }
  w->EndArray();
  w->Key("faults")
      .BeginObject()
      .Field("disk_io_errors", faults.disk_io_errors)
      .Field("disk_retries", faults.disk_retries)
      .Field("reconstruction_reads", faults.reconstruction_reads)
      .Field("spare_disks_used", faults.spare_disks_used)
      .Field("tape_errors", faults.tape_errors)
      .Field("tape_retries", faults.tape_retries)
      .Field("tape_remounts", faults.tape_remounts)
      .Field("bytes_rewritten", faults.bytes_rewritten)
      .Field("files_skipped", faults.files_skipped)
      .Field("link_errors", faults.link_errors)
      .Field("link_retransmits", faults.link_retransmits)
      .Field("link_reconnects", faults.link_reconnects)
      .Field("link_bytes_resent", faults.link_bytes_resent)
      .EndObject();
  if (content.any()) {
    w->Key("content")
        .BeginObject()
        .Field("raw_bytes", content.raw_bytes)
        .Field("wire_bytes", content.wire_bytes)
        .Field("unique_bytes", content.unique_bytes)
        .Field("chunks", content.chunks)
        .Field("dedup_hits", content.dedup_hits)
        .Field("crc_checks", content.crc_checks)
        .Field("encode_cpu_us", content.encode_cpu_us)
        .Field("decode_cpu_us", content.decode_cpu_us)
        .EndObject();
  }
  w->Key("resume")
      .BeginObject()
      .Field("resumes", resume.resumes)
      .Field("bytes_replayed", resume.bytes_replayed)
      .Field("bytes_skipped", resume.bytes_skipped)
      .Field("entries_skipped", resume.entries_skipped)
      .Field("checkpoints", resume.checkpoints)
      .EndObject();
  w->Key("phases").BeginArray();
  for (int i = 0; i < static_cast<int>(JobPhase::kCount); ++i) {
    const PhaseStats& p = phases[i];
    if (!p.active()) {
      continue;
    }
    w->BeginObject()
        .Field("name", JobPhaseName(static_cast<JobPhase>(i)))
        .Field("start_s", SimToSeconds(p.start))
        .Field("elapsed_s", SimToSeconds(p.elapsed()))
        .Field("cpu_utilization", p.CpuUtilization())
        .Field("disk_bytes", p.disk_bytes)
        .Field("tape_bytes", p.tape_bytes)
        .Field("net_bytes", p.net_bytes)
        .Field("disk_mb_per_s", p.DiskMBps())
        .Field("tape_mb_per_s", p.TapeMBps())
        .Field("net_mb_per_s", p.NetMBps())
        .EndObject();
  }
  w->EndArray();
  w->EndObject();
}

JobReport MergeReports(const std::string& name,
                       std::span<const JobReport> parts) {
  JobReport merged;
  merged.name = name;
  if (parts.empty()) {
    return merged;
  }
  merged.start_time = parts[0].start_time;
  merged.end_time = parts[0].end_time;
  merged.cpu_busy_start = parts[0].cpu_busy_start;
  merged.cpu_busy_end = parts[0].cpu_busy_end;
  for (const JobReport& r : parts) {
    merged.start_time = std::min(merged.start_time, r.start_time);
    merged.end_time = std::max(merged.end_time, r.end_time);
    merged.stream_bytes += r.stream_bytes;
    merged.data_bytes += r.data_bytes;
    // The CPU is shared: take the widest busy-integral window.
    merged.cpu_busy_start = std::min(merged.cpu_busy_start, r.cpu_busy_start);
    merged.cpu_busy_end = std::max(merged.cpu_busy_end, r.cpu_busy_end);
    if (!r.status.ok() && merged.status.ok()) {
      merged.status = r.status;
    }
    merged.faults.Add(r.faults);
    merged.resume.Add(r.resume);
    merged.content.Add(r.content);
    merged.tapes_used.insert(merged.tapes_used.end(), r.tapes_used.begin(),
                             r.tapes_used.end());
    merged.final_media.insert(merged.final_media.end(), r.final_media.begin(),
                              r.final_media.end());
    for (int i = 0; i < static_cast<int>(JobPhase::kCount); ++i) {
      const PhaseStats& p = r.phases[i];
      if (!p.active()) {
        continue;
      }
      PhaseStats& m = merged.phases[i];
      if (!m.active()) {
        m = p;
        continue;
      }
      m.start = std::min(m.start, p.start);
      m.end = std::max(m.end, p.end);
      m.cpu_busy_start = std::min(m.cpu_busy_start, p.cpu_busy_start);
      m.cpu_busy_end = std::max(m.cpu_busy_end, p.cpu_busy_end);
      m.disk_bytes += p.disk_bytes;
      m.tape_bytes += p.tape_bytes;
      m.net_bytes += p.net_bytes;
    }
  }
  return merged;
}

}  // namespace bkup

#include "src/backup/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <numeric>
#include <optional>

#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"

namespace bkup {

namespace {

bool IsLogical(BackupMode mode) {
  return mode == BackupMode::kLogicalFull ||
         mode == BackupMode::kLogicalIncremental;
}

bool IsRemote(BackupMode mode) { return mode == BackupMode::kRemoteImage; }

// A logical dump's quota trees partition the volume, so the part count is
// fixed: either exactly subtrees.size() drives or a single whole-tree dump.
// Image dumps stripe, so they flex between one drive and the configured
// parallelism.
uint32_t MinDrivesFor(const VolumeSpec& spec) {
  if (IsLogical(spec.mode) && !spec.subtrees.empty()) {
    return static_cast<uint32_t>(spec.subtrees.size());
  }
  return 1;
}

uint32_t MaxDrivesFor(const VolumeSpec& spec) {
  if (IsLogical(spec.mode)) {
    return MinDrivesFor(spec);
  }
  return spec.parallelism > 0 ? spec.parallelism : 1;
}

constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

}  // namespace

const char* BackupModeName(BackupMode mode) {
  switch (mode) {
    case BackupMode::kLogicalFull:
      return "logical-full";
    case BackupMode::kLogicalIncremental:
      return "logical-incremental";
    case BackupMode::kImage:
      return "image";
    case BackupMode::kRemoteImage:
      return "remote-image";
  }
  return "unknown";
}

NightlyScheduler::NightlyScheduler(Filer* filer, FleetConfig config,
                                   std::vector<VolumeSpec> volumes)
    : filer_(filer),
      config_(std::move(config)),
      volumes_(std::move(volumes)) {
  assert(filer_ != nullptr);
  assert(!config_.drives.empty());
  assert(config_.library != nullptr);
  for (const VolumeSpec& v : volumes_) {
    assert(v.fs != nullptr);
    assert(MinDrivesFor(v) <= config_.drives.size() &&
           "volume needs more drives than the fleet has");
    if (IsRemote(v.mode)) {
      assert(config_.link != nullptr && config_.server != nullptr &&
             "remote volume in a fleet without a link/tape server");
    }
    (void)v;
  }
}

SimDuration NightlyScheduler::EstimatedDuration(const VolumeSpec& spec,
                                                uint32_t drives) const {
  if (drives == 0) {
    drives = 1;
  }
  const double bytes_per_s =
      config_.planning_mb_per_s * 1e6 * static_cast<double>(drives);
  return SecondsToSim(static_cast<double>(spec.estimated_bytes) /
                      bytes_per_s) +
         config_.planning_fixed_cost;
}

SimTime NightlyScheduler::LatestFeasibleStart(const VolumeSpec& spec) const {
  if (spec.deadline == kNoDeadline) {
    return kNoDeadline;
  }
  return spec.deadline - EstimatedDuration(spec, MinDrivesFor(spec));
}

bool NightlyScheduler::QueueBefore(size_t a, size_t b) const {
  const VolumeSpec& va = volumes_[a];
  const VolumeSpec& vb = volumes_[b];
  if (va.priority != vb.priority) {
    return va.priority > vb.priority;
  }
  if (va.deadline != vb.deadline) {
    return va.deadline < vb.deadline;
  }
  if (va.name != vb.name) {
    return va.name < vb.name;
  }
  return a < b;
}

// ----------------------------------------------------------------- plan ---

NightPlan NightlyScheduler::BuildPlan() const {
  const size_t ndrv = config_.drives.size();
  NightPlan plan;

  std::vector<SimTime> free_at(ndrv, 0);
  std::vector<size_t> pending(volumes_.size());
  std::iota(pending.begin(), pending.end(), size_t{0});
  std::sort(pending.begin(), pending.end(),
            [this](size_t a, size_t b) { return QueueBefore(a, b); });

  // Plan-time link accounting: dispatched remote estimates never come back,
  // so a rejection is permanent and the volume is left out of the plan.
  uint64_t planned_link_bytes = 0;

  SimTime t = 0;
  while (!pending.empty()) {
    bool progress = true;
    while (progress) {
      progress = false;
      std::vector<int> idle;
      for (size_t d = 0; d < ndrv; ++d) {
        if (free_at[d] <= t) {
          idle.push_back(static_cast<int>(d));
        }
      }
      if (idle.empty()) {
        break;
      }
      std::vector<size_t> parked;
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (!parked.empty() && !config_.backfill) {
          break;  // strict order: the parked head blocks everything behind it
        }
        const size_t v = *it;
        const VolumeSpec& spec = volumes_[v];
        const uint32_t min_d = MinDrivesFor(spec);
        const uint32_t max_d = MaxDrivesFor(spec);

        std::vector<int> take;
        int aff = spec.affinity_drive;
        if (aff >= 0 && static_cast<size_t>(aff) >= ndrv) {
          aff = -1;
        }
        if (aff >= 0) {
          if (free_at[aff] <= t) {
            take.push_back(aff);
            for (int d : idle) {
              if (d != aff && take.size() < max_d) {
                take.push_back(d);
              }
            }
          } else if (t >= LatestFeasibleStart(spec)) {
            for (int d : idle) {
              if (take.size() < max_d) {
                take.push_back(d);
              }
            }
          } else {
            parked.push_back(v);
            continue;
          }
        } else {
          for (int d : idle) {
            if (take.size() < max_d) {
              take.push_back(d);
            }
          }
        }
        if (take.size() < min_d) {
          parked.push_back(v);
          continue;
        }
        if (IsRemote(spec.mode) && config_.budget != nullptr &&
            !config_.budget->unlimited() &&
            planned_link_bytes + spec.estimated_bytes >
                config_.budget->nightly_bytes()) {
          pending.erase(it);  // cannot ever fit tonight: not in the plan
          progress = true;
          break;
        }
        const SimDuration est =
            EstimatedDuration(spec, static_cast<uint32_t>(take.size()));
        const bool backfill = !parked.empty();
        if (backfill) {
          bool safe = true;
          for (size_t u : parked) {
            if (t + est > LatestFeasibleStart(volumes_[u])) {
              safe = false;
              break;
            }
          }
          if (!safe) {
            parked.push_back(v);
            continue;
          }
        }
        for (int d : take) {
          free_at[d] = t + est;
          plan.assignments.push_back(PlannedAssignment{v, d, t, est, backfill});
        }
        if (IsRemote(spec.mode)) {
          planned_link_bytes += spec.estimated_bytes;
        }
        pending.erase(it);
        progress = true;
        break;
      }
    }
    if (pending.empty()) {
      break;
    }
    // Advance to the next decision point: a drive freeing, or a parked
    // affinity-waiter crossing its latest feasible fallback start.
    SimTime next = kNoDeadline;
    for (SimTime f : free_at) {
      if (f > t) {
        next = std::min(next, f);
      }
    }
    for (size_t v : pending) {
      const VolumeSpec& spec = volumes_[v];
      if (spec.affinity_drive >= 0 && spec.deadline != kNoDeadline) {
        const SimTime lfs = LatestFeasibleStart(spec);
        if (lfs > t) {
          next = std::min(next, lfs);
        }
      }
    }
    assert(next != kNoDeadline && "plan stuck with idle drives");
    t = next;
  }
  for (SimTime f : free_at) {
    plan.projected_makespan = std::max(plan.projected_makespan, f);
  }
  return plan;
}

std::string NightPlan::Serialize(
    const std::vector<VolumeSpec>& volumes) const {
  std::string out = "nightplan v1\n";
  for (const PlannedAssignment& a : assignments) {
    AppendLine(&out, "assign %s drive=%d start=%lld est=%lld backfill=%d\n",
               volumes[a.volume].name.c_str(), a.drive,
               static_cast<long long>(a.start),
               static_cast<long long>(a.estimated), a.backfill ? 1 : 0);
  }
  AppendLine(&out, "makespan %lld\n",
             static_cast<long long>(projected_makespan));
  return out;
}

// ------------------------------------------------------------ execution ---

struct NightlyScheduler::Completion {
  bool timer = false;
  bool health = false;  // timer tick that samples SLO health, no rescan
  size_t vol = 0;
  int attempt = 0;
  std::vector<int> drive_idx;
  std::vector<Status> part_status;  // parallel to drive_idx
  std::vector<std::vector<std::string>> part_media;
  JobReport merged;
  bool ok = false;
  SimTime started = 0;
  uint64_t link_reservation = 0;
};

Task NightlyScheduler::Waker(SimDuration delay,
                             Channel<Completion>* completions, bool health) {
  co_await filer_->env()->Delay(delay);
  Completion tick;
  tick.timer = true;
  tick.health = health;
  co_await completions->Send(std::move(tick));
}

namespace {

// Joins a timed media load into a latch (TimedLoadMedia is a bare Task).
Task LoadOne(TapeDrive* drive, Tape* tape, CountdownLatch* latch) {
  co_await drive->TimedLoadMedia(tape);
  latch->CountDown();
}

}  // namespace

Task NightlyScheduler::RunOne(size_t vol, int attempt,
                              std::vector<int> drive_idx,
                              std::vector<Tape*> primaries,
                              std::vector<std::vector<Tape*>> spares,
                              uint64_t link_reservation,
                              Channel<Completion>* completions) {
  SimEnvironment* env = filer_->env();
  const VolumeSpec& spec = volumes_[vol];

  Completion c;
  c.vol = vol;
  c.attempt = attempt;
  c.drive_idx = drive_idx;
  c.started = env->now();
  c.link_reservation = link_reservation;

  std::vector<TapeDrive*> drives;
  for (int d : drive_idx) {
    drives.push_back(config_.drives[d]);
  }

  // Every attempt mounts fresh media, all drives loading concurrently (the
  // stackers work in parallel; the job starts when the last one is ready).
  CountdownLatch loads(env, static_cast<int>(drives.size()));
  for (size_t k = 0; k < drives.size(); ++k) {
    env->Spawn(LoadOne(drives[k], primaries[k], &loads));
  }
  co_await loads.Wait();

  const std::string snap =
      "nightly." + spec.name + ".a" + std::to_string(attempt);
  CountdownLatch job_done(env, 1);
  switch (spec.mode) {
    case BackupMode::kLogicalFull:
    case BackupMode::kLogicalIncremental: {
      LogicalDumpOptions options;
      options.level = spec.level;
      options.base_time =
          spec.mode == BackupMode::kLogicalIncremental ? spec.base_time : 0;
      options.volume_name = spec.name;
      options.snapshot_name = snap;
      std::vector<std::string> subtrees = spec.subtrees;
      if (subtrees.empty()) {
        subtrees.push_back("/");
      }
      assert(subtrees.size() == drives.size());
      ParallelLogicalBackupResult result;
      env->Spawn(ParallelLogicalBackupJob(filer_, spec.fs, drives, subtrees,
                                          options, &result, &job_done,
                                          config_.supervision, spares,
                                          config_.qos));
      co_await job_done.Wait();
      c.merged = result.merged;
      for (const auto& p : result.parts) {
        c.part_status.push_back(p->report.status);
        c.part_media.push_back(p->report.final_media);
      }
      break;
    }
    case BackupMode::kImage: {
      ImageDumpOptions options;
      options.snapshot_name = snap;
      ParallelImageBackupResult result;
      env->Spawn(ParallelImageBackupJob(filer_, spec.fs, drives, options,
                                        /*delete_snapshot_after=*/true,
                                        &result, &job_done,
                                        config_.supervision, spares,
                                        config_.qos));
      co_await job_done.Wait();
      c.merged = result.merged;
      for (const auto& p : result.parts) {
        c.part_status.push_back(p->report.status);
        c.part_media.push_back(p->report.final_media);
      }
      break;
    }
    case BackupMode::kRemoteImage: {
      ImageDumpOptions options;
      options.snapshot_name = snap;
      ParallelRemoteImageBackupResult result;
      env->Spawn(ParallelRemoteImageBackupJob(
          filer_, spec.fs, config_.link, config_.server, drives, options,
          /*delete_snapshot_after=*/true, config_.supervision, &result,
          &job_done, config_.qos));
      co_await job_done.Wait();
      c.merged = result.merged;
      for (const auto& p : result.parts) {
        c.part_status.push_back(p->report.status);
        c.part_media.push_back(p->report.final_media);
      }
      break;
    }
  }

  c.ok = c.merged.status.ok();
  for (const Status& st : c.part_status) {
    c.ok = c.ok && st.ok();
  }
  co_await completions->Send(std::move(c));
}

Task NightlyScheduler::Run(NightReport* report, CountdownLatch* done) {
  SimEnvironment* env = filer_->env();
  const size_t nvol = volumes_.size();
  const size_t ndrv = config_.drives.size();

  MetricsRegistry& reg = MetricsRegistry::Default();
  const MetricLabels labels = {{"fleet", config_.library->name()}};
  Counter* m_dispatches = reg.GetCounter("sched.dispatches", labels);
  Counter* m_backfills = reg.GetCounter("sched.backfills", labels);
  Counter* m_reassigns = reg.GetCounter("sched.reassignments", labels);
  Counter* m_hits = reg.GetCounter("sched.deadline_hits", labels);
  Counter* m_misses = reg.GetCounter("sched.deadline_misses", labels);
  Counter* m_drive_failures = reg.GetCounter("sched.drive_failures", labels);
  Counter* m_budget_waits = reg.GetCounter("sched.link_budget_waits", labels);

  report->night_start = env->now();
  report->volumes.resize(nvol);
  report->drives.resize(ndrv);
  std::vector<int64_t> busy0(ndrv);
  for (size_t d = 0; d < ndrv; ++d) {
    report->drives[d].name = config_.drives[d]->name();
    busy0[d] = config_.drives[d]->unit().BusyIntegral();
  }
  for (size_t v = 0; v < nvol; ++v) {
    VolumeOutcome& out = report->volumes[v];
    out.name = volumes_[v].name;
    out.mode = volumes_[v].mode;
    out.enqueued = report->night_start;
  }

  struct VState {
    int attempts = 0;
    bool dispatched_once = false;
    bool budget_wait_counted = false;
  };
  std::vector<VState> vs(nvol);
  std::vector<bool> busy(ndrv, false);
  std::vector<bool> healthy(ndrv, true);
  std::vector<std::vector<size_t>> open_grants(nvol);
  // Tape head position at grant time, parallel to report->grants: an open
  // grant's live progress is the drive's position delta since its start.
  std::vector<uint64_t> grant_start_pos;

  // The night's SLO monitor: one objective per volume, sampled on a timer
  // (FleetConfig::health_sample_period). It listens for span completions
  // when a tracer is attached, so per-phase latency objectives feed off the
  // same instrumentation as the trace export.
  SloMonitor monitor(env);
  monitor.set_default_rate_mb_s(config_.planning_mb_per_s);
  for (size_t v = 0; v < nvol; ++v) {
    monitor.Register(volumes_[v].name, volumes_[v].deadline,
                     volumes_[v].estimated_bytes);
  }
  Tracer* tracer = env->tracer();
  if (tracer != nullptr) {
    tracer->set_span_listener(&monitor);
  }
  std::vector<bool> breach_dumped(nvol, false);

  std::vector<size_t> pending(nvol);
  std::iota(pending.begin(), pending.end(), size_t{0});
  std::sort(pending.begin(), pending.end(),
            [this](size_t a, size_t b) { return QueueBefore(a, b); });

  Channel<Completion> completions(env, nvol + 8);
  size_t running = 0;
  size_t wakers = 0;

  // Publish live queue state to the flight recorder (if one is attached)
  // for the duration of the night; a dump mid-night shows who was running,
  // who was parked and which drives were condemned.
  FlightRecorder* recorder = env->flight_recorder();
  if (recorder != nullptr) {
    recorder->AddStateProvider("scheduler_queue", [&](JsonWriter* w) {
      w->BeginObject();
      w->Field("running", static_cast<uint64_t>(running));
      w->Key("pending").BeginArray();
      for (size_t v : pending) {
        w->String(volumes_[v].name);
      }
      w->EndArray();
      w->Key("drives").BeginArray();
      for (size_t d = 0; d < ndrv; ++d) {
        w->BeginObject()
            .Field("name", config_.drives[d]->name())
            .Field("busy", static_cast<bool>(busy[d]))
            .Field("healthy", static_cast<bool>(healthy[d]))
            .EndObject();
      }
      w->EndArray();
      w->EndObject();
    });
  }

  // First health sample fires one period in; re-armed after every tick
  // while work remains.
  if (config_.health_sample_period > 0) {
    env->Spawn(Waker(config_.health_sample_period, &completions,
                     /*health=*/true));
    ++wakers;
  }

  // Deadline-fallback boundaries are the one dispatch trigger that is not a
  // completion: an affinity-waiter becomes willing to take any drive when
  // its latest feasible start passes. Arm one rescan tick per such volume.
  for (size_t v = 0; v < nvol; ++v) {
    const VolumeSpec& spec = volumes_[v];
    if (spec.affinity_drive >= 0 && spec.deadline != kNoDeadline) {
      const SimTime lfs = LatestFeasibleStart(spec);
      if (lfs > env->now()) {
        env->Spawn(Waker(lfs - env->now(), &completions));
        ++wakers;
      }
    }
  }

  auto healthy_count = [&]() {
    return static_cast<size_t>(
        std::count(healthy.begin(), healthy.end(), true));
  };

  // Finishes `v` without a successful job: terminal failure bookkeeping.
  // The failure is a black-box moment — dump the flight recorder so the
  // queue state and fault ring at the point of no return are preserved.
  auto fail_volume = [&](size_t v, Status st) {
    VolumeOutcome& out = report->volumes[v];
    out.status = std::move(st);
    out.finished = env->now();
    out.deadline_met = false;
    ++report->deadline_misses;
    m_misses->Increment();
    if (report->status.ok()) {
      report->status = out.status;
    }
    monitor.Complete(volumes_[v].name, /*ok=*/false);
    if (recorder != nullptr) {
      (void)recorder->Dump("job_failure");
    }
  };

  // Reads live progress off the tape heads and appends one health sample;
  // a fresh breach (deadline passed with the volume still unfinished)
  // triggers a flight-recorder dump exactly once per volume.
  auto sample_health = [&]() {
    for (size_t v = 0; v < nvol; ++v) {
      if (open_grants[v].empty()) {
        continue;
      }
      uint64_t done_bytes = 0;
      for (size_t g : open_grants[v]) {
        const DriveGrant& grant = report->grants[g];
        const uint64_t pos = config_.drives[grant.drive]->position();
        if (pos > grant_start_pos[g]) {
          done_bytes += pos - grant_start_pos[g];
        }
      }
      monitor.ReportProgress(volumes_[v].name, done_bytes);
    }
    const SloHealthSample& sample = monitor.Sample();
    for (size_t v = 0; v < nvol && v < sample.entries.size(); ++v) {
      if (sample.entries[v].breached && !breach_dumped[v]) {
        breach_dumped[v] = true;
        if (recorder != nullptr) {
          (void)recorder->Dump("slo_breach");
        }
      }
    }
  };

  // One pass over the queue, dispatching everything that may start now.
  auto try_dispatch = [&]() {
    bool progress = true;
    while (progress) {
      progress = false;
      std::vector<int> idle;
      for (size_t d = 0; d < ndrv; ++d) {
        if (!busy[d] && healthy[d]) {
          idle.push_back(static_cast<int>(d));
        }
      }
      if (idle.empty()) {
        break;
      }
      std::vector<size_t> parked;
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (!parked.empty() && !config_.backfill) {
          break;
        }
        const size_t v = *it;
        const VolumeSpec& spec = volumes_[v];
        const uint32_t min_d = MinDrivesFor(spec);
        const uint32_t max_d = MaxDrivesFor(spec);

        std::vector<int> take;
        int aff = spec.affinity_drive;
        if (aff >= 0 &&
            (static_cast<size_t>(aff) >= ndrv || !healthy[aff])) {
          aff = -1;  // a dead affinity drive releases the volume to the pool
        }
        if (aff >= 0) {
          if (!busy[aff]) {
            take.push_back(aff);
            for (int d : idle) {
              if (d != aff && take.size() < max_d) {
                take.push_back(d);
              }
            }
          } else if (env->now() >= LatestFeasibleStart(spec)) {
            for (int d : idle) {
              if (take.size() < max_d) {
                take.push_back(d);
              }
            }
          } else {
            parked.push_back(v);
            continue;
          }
        } else {
          for (int d : idle) {
            if (take.size() < max_d) {
              take.push_back(d);
            }
          }
        }
        if (take.size() < min_d) {
          parked.push_back(v);
          continue;
        }

        const bool remote = IsRemote(spec.mode);
        bool reserved = false;
        if (remote && config_.budget != nullptr) {
          if (!config_.budget->TryReserve(spec.estimated_bytes)) {
            if (!vs[v].budget_wait_counted) {
              vs[v].budget_wait_counted = true;
              ++report->link_budget_waits;
              m_budget_waits->Increment();
            }
            if (config_.budget->reserved() == 0) {
              // Nothing in flight to settle and consumed only grows: this
              // volume can never fit tonight's allowance.
              fail_volume(v, Exhausted("link budget exhausted for volume '" +
                                       spec.name + "'"));
              pending.erase(it);
              progress = true;
              break;
            }
            parked.push_back(v);
            continue;
          }
          reserved = true;
        }

        const bool backfill = !parked.empty();
        if (backfill) {
          const SimTime est_finish =
              env->now() +
              EstimatedDuration(spec, static_cast<uint32_t>(take.size()));
          bool safe = true;
          for (size_t u : parked) {
            if (est_finish > LatestFeasibleStart(volumes_[u])) {
              safe = false;
              break;
            }
          }
          if (!safe) {
            if (reserved) {
              config_.budget->Cancel(spec.estimated_bytes);
            }
            parked.push_back(v);
            continue;
          }
        }

        // Dispatch.
        pending.erase(it);
        ++vs[v].attempts;
        VolumeOutcome& out = report->volumes[v];
        out.attempts = vs[v].attempts;
        out.started = env->now();
        if (!vs[v].dispatched_once) {
          vs[v].dispatched_once = true;
          out.wait = env->now() - out.enqueued;
        }
        out.backfilled = backfill;
        m_dispatches->Increment();
        if (backfill) {
          ++report->backfills;
          m_backfills->Increment();
        }

        std::vector<Tape*> primaries;
        std::vector<std::vector<Tape*>> spares;
        for (size_t k = 0; k < take.size(); ++k) {
          const std::string base = spec.name + ".a" +
                                   std::to_string(vs[v].attempts) + ".p" +
                                   std::to_string(k);
          primaries.push_back(
              config_.library->TapeInSlot(config_.library->AddBlankTape(base)));
          std::vector<Tape*> sp;
          if (!remote) {
            for (uint32_t j = 0; j < config_.spare_media_per_job; ++j) {
              sp.push_back(config_.library->TapeInSlot(
                  config_.library->AddBlankTape(base + ".s" +
                                                std::to_string(j))));
            }
          }
          spares.push_back(std::move(sp));
        }
        for (int d : take) {
          busy[d] = true;
          ++report->drives[d].jobs;
          open_grants[v].push_back(report->grants.size());
          report->grants.push_back(DriveGrant{v, vs[v].attempts, d,
                                              env->now(), 0, backfill});
          grant_start_pos.push_back(config_.drives[d]->position());
        }
        env->Spawn(RunOne(v, vs[v].attempts, take, std::move(primaries),
                          std::move(spares),
                          reserved ? spec.estimated_bytes : 0, &completions));
        ++running;
        progress = true;
        break;
      }
    }
  };

  try_dispatch();
  while (running > 0) {
    std::optional<Completion> recvd = co_await completions.Recv();
    assert(recvd.has_value());
    Completion c = std::move(*recvd);
    if (c.timer) {
      --wakers;
      if (c.health) {
        // Health ticks are read-only: sample, re-arm, and never rescan the
        // queue — a night with the monitor disabled dispatches identically.
        sample_health();
        if (running > 0 || !pending.empty()) {
          env->Spawn(Waker(config_.health_sample_period, &completions,
                           /*health=*/true));
          ++wakers;
        }
        continue;
      }
      try_dispatch();
      continue;
    }
    --running;
    const size_t v = c.vol;
    const VolumeSpec& spec = volumes_[v];
    VolumeOutcome& out = report->volumes[v];

    for (int d : c.drive_idx) {
      busy[d] = false;
    }
    for (size_t g : open_grants[v]) {
      report->grants[g].end = env->now();
    }
    open_grants[v].clear();

    if (c.link_reservation > 0 && config_.budget != nullptr) {
      config_.budget->Commit(c.link_reservation, c.merged.stream_bytes);
    }

    // A part that died of an I/O error despite supervision condemns its
    // drive: pull it from the pool for the rest of the night.
    for (size_t k = 0; k < c.part_status.size(); ++k) {
      const Status& st = c.part_status[k];
      if (!st.ok() && st.code() == ErrorCode::kIoError) {
        const int d = c.drive_idx[k];
        if (healthy[d]) {
          healthy[d] = false;
          report->drives[d].failed = true;
          ++report->drives_failed;
          m_drive_failures->Increment();
        }
      }
    }

    if (c.ok) {
      out.status = Status::Ok();
      out.finished = env->now();
      out.drives_used = c.drive_idx;
      out.part_media = c.part_media;
      out.report = c.merged;
      out.deadline_met = env->now() <= spec.deadline;
      monitor.Complete(spec.name, /*ok=*/true);
      if (out.deadline_met) {
        ++report->deadline_hits;
        m_hits->Increment();
      } else {
        ++report->deadline_misses;
        m_misses->Increment();
      }
    } else {
      Status failure = c.merged.status;
      for (const Status& st : c.part_status) {
        if (!st.ok()) {
          failure = st;
          break;
        }
      }
      const bool can_retry = vs[v].attempts < config_.max_attempts_per_volume &&
                             healthy_count() >= MinDrivesFor(spec);
      if (can_retry) {
        ++report->reassignments;
        m_reassigns->Increment();
        pending.insert(
            std::lower_bound(pending.begin(), pending.end(), v,
                             [this](size_t a, size_t b) {
                               return QueueBefore(a, b);
                             }),
            v);
      } else {
        out.drives_used = c.drive_idx;
        out.part_media = c.part_media;
        out.report = c.merged;
        fail_volume(v, std::move(failure));
      }
    }
    try_dispatch();
  }

  // Anything still pending can never start: every reason a volume parks with
  // no job running (too few healthy drives, a drained link budget) only gets
  // worse with time.
  for (size_t v : pending) {
    fail_volume(v, IoError("no healthy drives left for volume '" +
                           volumes_[v].name + "'"));
  }
  pending.clear();

  report->night_end = env->now();
  const SimDuration span = report->makespan();
  for (size_t d = 0; d < ndrv; ++d) {
    DriveNightStats& stats = report->drives[d];
    stats.busy = config_.drives[d]->unit().BusyIntegral() - busy0[d];
    stats.utilization =
        span > 0 ? static_cast<double>(stats.busy) /
                       static_cast<double>(
                           config_.drives[d]->unit().capacity() * span)
                 : 0.0;
  }

  // Final SLO accounting: one closing sample so the series ends at the
  // night's end, then publish the history and per-volume verdicts.
  if (config_.health_sample_period > 0) {
    sample_health();
  }
  report->night_health = monitor.history();
  report->slo_breaches = monitor.breaches();
  for (size_t v = 0; v < nvol; ++v) {
    report->volumes[v].slo_flagged_live =
        monitor.WasFlaggedLive(volumes_[v].name);
  }
  if (recorder != nullptr) {
    recorder->RemoveStateProvider("scheduler_queue");
  }
  if (tracer != nullptr) {
    tracer->set_span_listener(nullptr);
  }

  // Drain outstanding deadline ticks so their channel pointer stays valid.
  while (wakers > 0) {
    std::optional<Completion> tick = co_await completions.Recv();
    assert(tick.has_value() && tick->timer);
    --wakers;
  }
  done->CountDown();
}

// ------------------------------------------------------------- reporting ---

std::string NightReport::SerializeExecution() const {
  std::string out = "nightexec v1\n";
  for (const DriveGrant& g : grants) {
    AppendLine(&out,
               "grant %s attempt=%d drive=%d start=%lld end=%lld "
               "backfill=%d\n",
               volumes[g.volume].name.c_str(), g.attempt, g.drive,
               static_cast<long long>(g.start),
               static_cast<long long>(g.end), g.backfill ? 1 : 0);
  }
  for (const VolumeOutcome& v : volumes) {
    AppendLine(&out,
               "outcome %s status=%s attempts=%d started=%lld "
               "finished=%lld deadline=%s bytes=%llu\n",
               v.name.c_str(),
               v.status.ok() ? "OK" : ErrorCodeName(v.status.code()),
               v.attempts, static_cast<long long>(v.started),
               static_cast<long long>(v.finished),
               v.deadline_met ? "hit" : "miss",
               static_cast<unsigned long long>(v.report.stream_bytes));
  }
  AppendLine(&out,
             "counters hits=%llu misses=%llu backfills=%llu "
             "reassignments=%llu drives_failed=%llu budget_waits=%llu\n",
             static_cast<unsigned long long>(deadline_hits),
             static_cast<unsigned long long>(deadline_misses),
             static_cast<unsigned long long>(backfills),
             static_cast<unsigned long long>(reassignments),
             static_cast<unsigned long long>(drives_failed),
             static_cast<unsigned long long>(link_budget_waits));
  return out;
}

void NightReport::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("night").BeginObject();
  w->Field("start_s", SimToSeconds(night_start));
  w->Field("end_s", SimToSeconds(night_end));
  w->Field("makespan_s", SimToSeconds(makespan()));
  w->Field("status", status.ok() ? "OK" : ErrorCodeName(status.code()));
  w->EndObject();

  w->Key("counters").BeginObject();
  w->Field("deadline_hits", deadline_hits);
  w->Field("deadline_misses", deadline_misses);
  w->Field("backfills", backfills);
  w->Field("reassignments", reassignments);
  w->Field("drives_failed", drives_failed);
  w->Field("link_budget_waits", link_budget_waits);
  w->Field("slo_breaches", slo_breaches);
  w->EndObject();

  w->Key("night_health").BeginArray();
  for (const SloHealthSample& sample : night_health) {
    WriteHealthSample(w, sample);
  }
  w->EndArray();

  w->Key("volumes").BeginArray();
  for (const VolumeOutcome& v : volumes) {
    w->BeginObject();
    w->Field("name", v.name);
    w->Field("mode", BackupModeName(v.mode));
    w->Field("status", v.status.ok() ? "OK" : ErrorCodeName(v.status.code()));
    w->Field("attempts", static_cast<int64_t>(v.attempts));
    w->Field("backfilled", v.backfilled);
    w->Field("deadline_met", v.deadline_met);
    w->Field("slo_flagged_live", v.slo_flagged_live);
    w->Field("wait_s", SimToSeconds(v.wait));
    w->Field("started_s", SimToSeconds(v.started));
    w->Field("finished_s", SimToSeconds(v.finished));
    w->Key("drives").BeginArray();
    for (int d : v.drives_used) {
      w->Int(d);
    }
    w->EndArray();
    w->Key("media").BeginArray();
    for (const auto& part : v.part_media) {
      for (const std::string& label : part) {
        w->String(label);
      }
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();

  w->Key("drives").BeginArray();
  for (const DriveNightStats& d : drives) {
    w->BeginObject();
    w->Field("name", d.name);
    w->Field("jobs", static_cast<int64_t>(d.jobs));
    w->Field("failed", d.failed);
    w->Field("busy_s", SimToSeconds(d.busy));
    w->Field("utilization", d.utilization);
    w->EndObject();
  }
  w->EndArray();

  w->Key("grants").BeginArray();
  for (const DriveGrant& g : grants) {
    w->BeginObject();
    w->Field("volume", volumes[g.volume].name);
    w->Field("attempt", static_cast<int64_t>(g.attempt));
    w->Field("drive", static_cast<int64_t>(g.drive));
    w->Field("start_s", SimToSeconds(g.start));
    w->Field("end_s", SimToSeconds(g.end));
    w->Field("backfill", g.backfill);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace bkup

// Composed multi-tape operations, matching §5.2 of the paper:
//
//   * Parallel *logical* dump cannot stripe one dump over several drives
//     ("we cannot use multiple tape devices in parallel for a single dump
//     due to the strictly linear format"), so the volume is split into
//     equal quota trees and each tree is dumped to its own drive.
//   * Parallel *physical* dump stripes the block set across drives in
//     deterministic chunks; all parts share one quiesce (snapshot).
//
// All parts contend for the one filer's CPU, NVRAM and disks — which is
// exactly what makes logical dumps stop scaling while physical dumps keep
// going (Tables 4 and 5).
#ifndef BKUP_BACKUP_PARALLEL_H_
#define BKUP_BACKUP_PARALLEL_H_

#include <memory>
#include <vector>

#include "src/backup/jobs.h"

namespace bkup {

struct ParallelLogicalBackupResult {
  std::vector<std::unique_ptr<LogicalBackupJobResult>> parts;
  JobReport control;  // snapshot create/delete phases
  JobReport merged;
};

// Dumps `subtrees[k]` to `drives[k]` concurrently from one shared snapshot.
// With `supervision`, each part's replay runs the retry/remount ladder of
// src/backup/supervisor, drawing remount media from `spare_tapes[k]` (the
// per-drive slice of the stacker; may be shorter than `drives`). `qos`
// applies to every part: the parts share one throttle bucket, so the cap
// bounds the *aggregate* stream rate of the parallel dump. `content`
// applies to every part too; with dedup on, the parts share the one
// ChunkIndex, so a chunk first seen by part j dedups in part k.
Task ParallelLogicalBackupJob(Filer* filer, Filesystem* fs,
                              std::vector<TapeDrive*> drives,
                              std::vector<std::string> subtrees,
                              LogicalDumpOptions base_options,
                              ParallelLogicalBackupResult* result,
                              CountdownLatch* done,
                              const SupervisionPolicy* supervision = nullptr,
                              std::vector<std::vector<Tape*>> spare_tapes = {},
                              BackupQos qos = {}, ContentConfig content = {});

struct ParallelLogicalRestoreResult {
  std::vector<std::unique_ptr<LogicalRestoreJobResult>> parts;
  JobReport merged;
};

// Restores N subtree tapes into one file system concurrently; tape k is
// restored into target_dirs[k] (created if missing). `content` must match
// the config the backup ran with (same stages, same ChunkIndex).
Task ParallelLogicalRestoreJob(Filer* filer, Filesystem* fs,
                               std::vector<TapeDrive*> drives,
                               std::vector<std::string> target_dirs,
                               bool bypass_nvram,
                               ParallelLogicalRestoreResult* result,
                               CountdownLatch* done, ContentConfig content = {});

struct ParallelImageBackupResult {
  std::vector<std::unique_ptr<ImageBackupJobResult>> parts;
  JobReport control;
  JobReport merged;
};

// Stripes one image dump over N drives (part k of N per drive) from one
// shared snapshot. Supervision and per-drive remount media as for the
// logical variant above.
Task ParallelImageBackupJob(Filer* filer, Filesystem* fs,
                            std::vector<TapeDrive*> drives,
                            ImageDumpOptions base_options,
                            bool delete_snapshot_after,
                            ParallelImageBackupResult* result,
                            CountdownLatch* done,
                            const SupervisionPolicy* supervision = nullptr,
                            std::vector<std::vector<Tape*>> spare_tapes = {},
                            BackupQos qos = {}, ContentConfig content = {});

struct ParallelImageRestoreResult {
  std::vector<std::unique_ptr<ImageRestoreJobResult>> parts;
  JobReport merged;
};

// Restores the N part-tapes of a striped image dump concurrently.
Task ParallelImageRestoreJob(Filer* filer, Volume* volume,
                             std::vector<TapeDrive*> drives,
                             ParallelImageRestoreResult* result,
                             CountdownLatch* done, ContentConfig content = {});

}  // namespace bkup

#endif  // BKUP_BACKUP_PARALLEL_H_

// The multi-volume nightly backup scheduler: one filer, N volumes, M tape
// drives with M < N, and optionally one shared network link.
//
// Section 5.1 of the paper shows concurrent per-volume dumps do not
// interfere when each has its own drive; a real fleet never has that luxury.
// The scheduler closes the gap: it takes per-volume policies (full or
// incremental, size estimate, priority, deadline, drive affinity), orders
// them deterministically, and executes them through the existing parallel
// job machinery (src/backup/parallel.h, src/backup/remote.h) under per-job
// supervision (src/backup/supervisor.h):
//
//   * **Ordering** is priority-major, earliest-deadline-minor — the nightly
//     operator's rule: the volumes that must not miss go first, ties broken
//     by who is due soonest, then by name (total and deterministic).
//   * **Drive affinity** keeps a volume's incrementals on the drive that
//     holds its full, so a restore chain mounts one stacker. A volume whose
//     affinity drive is busy *waits* for it — unless waiting provably blows
//     its deadline (or the drive died), in which case it falls back to any
//     drive.
//   * **Backfill** is preemption-free: when the queue head is parked waiting
//     for its affinity drive, a shorter, lower-priority volume may use an
//     otherwise idle drive — but only if its estimated finish precedes every
//     parked volume's latest feasible fallback start, so backfill can never
//     cause a miss that the plan did not already have.
//   * **Supervision**: each dispatched job runs with the fleet's
//     SupervisionPolicy and a remount pool drawn from the shared library. A
//     job that fails anyway marks its drive failed, releases it from the
//     pool, and the volume is re-dispatched (fresh media, surviving drives)
//     up to `max_attempts_per_volume`.
//   * **Link budget**: remote volumes reserve their estimate against a
//     shared `LinkBudget` before dispatch and settle to actual bytes after;
//     a volume that cannot fit tonight's remaining allowance waits for
//     running remote jobs to settle before trying again.
//
// `BuildPlan()` computes the static simulated-time plan (same policy, size
// estimates only); `Run()` executes it against reality — faults, contention
// and all — and fills a `NightReport` with per-volume wait/elapsed/deadline
// outcomes, per-drive utilization and fleet counters. Both are byte-for-byte
// deterministic for a fixed fleet description. See DESIGN.md §12.
#ifndef BKUP_BACKUP_SCHEDULER_H_
#define BKUP_BACKUP_SCHEDULER_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/backup/parallel.h"
#include "src/backup/remote.h"
#include "src/backup/supervisor.h"
#include "src/block/tape_library.h"
#include "src/net/link.h"
#include "src/obs/slo.h"
#include "src/sim/channel.h"

namespace bkup {

enum class BackupMode {
  kLogicalFull,         // whole-tree logical dump (level 0)
  kLogicalIncremental,  // logical dump of changes since `base_time`
  kImage,               // block-order image dump (optionally striped)
  kRemoteImage,         // image dump streamed over the shared link
};

const char* BackupModeName(BackupMode mode);

// One volume's nightly policy. `estimated_bytes` drives planning (assignment
// order, backfill windows, link reservations); the executed job measures
// reality.
struct VolumeSpec {
  std::string name;
  Filesystem* fs = nullptr;
  BackupMode mode = BackupMode::kImage;
  int level = 0;          // logical incremental level (> 0 with base_time)
  int64_t base_time = 0;  // incremental cutoff (dump inodes changed since)
  uint64_t estimated_bytes = 0;
  int priority = 0;  // higher runs earlier
  SimTime deadline = std::numeric_limits<SimTime>::max();
  // Index into FleetConfig::drives; -1 = no affinity. Incrementals set this
  // to the drive that holds their full so the chain stays on one stacker.
  int affinity_drive = -1;
  // Drives this volume may gang when the pool allows it (image striping /
  // parallel quota-tree dump). Shrinks to the idle-drive supply at dispatch.
  uint32_t parallelism = 1;
  // Quota-tree roots for parallel logical dumps; required when mode is
  // logical and parallelism > 1 (a logical stream cannot stripe).
  std::vector<std::string> subtrees;
};

// The shared hardware one night runs against.
struct FleetConfig {
  std::vector<TapeDrive*> drives;
  // Media pool: every dispatch draws fresh blanks (primary per drive plus
  // `spare_media_per_job` remount spares) from this library.
  TapeLibrary* library = nullptr;
  uint32_t spare_media_per_job = 1;
  const SupervisionPolicy* supervision = nullptr;
  int max_attempts_per_volume = 2;
  // Planning model: assumed per-drive stream rate and fixed per-job cost
  // (media load + snapshot bookkeeping) used for estimates.
  double planning_mb_per_s = 9.0;
  SimDuration planning_fixed_cost = 80 * kSecond;
  bool backfill = true;
  // Remote volumes stream over this link to drives owned by `server` (the
  // drives still live in `drives`, the one pool). `budget` is optional.
  NetLink* link = nullptr;
  TapeServer* server = nullptr;
  LinkBudget* budget = nullptr;
  // Live SLO sampling cadence: every period the night's SloMonitor reads
  // drive progress, projects each volume's ETA and appends a
  // `night_health` sample to the report. 0 disables the monitor. Sampling
  // is read-only — it never changes a dispatch decision.
  SimDuration health_sample_period = 30 * kSecond;
  // Backup QoS applied to every dispatched job: all of the night's dumps
  // share the one throttle bucket and run at the one scheduling class, so a
  // fleet backing up behind live traffic caps its aggregate draw.
  BackupQos qos;
};

// One drive grant in the static plan (BuildPlan) — volume k starts on
// `drive` at `start` and is expected to hold it for `estimated`.
struct PlannedAssignment {
  size_t volume = 0;  // index into the scheduler's volumes
  int drive = 0;      // index into FleetConfig::drives
  SimTime start = 0;
  SimDuration estimated = 0;
  bool backfill = false;
};

struct NightPlan {
  std::vector<PlannedAssignment> assignments;  // in planned start order
  SimDuration projected_makespan = 0;
  // Canonical text form; byte-identical across runs of the same fleet.
  std::string Serialize(const std::vector<VolumeSpec>& volumes) const;
};

// One executed drive occupancy: [start, end] on `drive` for `volume`'s
// attempt `attempt`. The double-booking property test audits these.
struct DriveGrant {
  size_t volume = 0;
  int attempt = 1;
  int drive = 0;
  SimTime start = 0;
  SimTime end = 0;
  bool backfill = false;
};

// Per-volume outcome of the night.
struct VolumeOutcome {
  std::string name;
  BackupMode mode = BackupMode::kImage;
  Status status;
  int attempts = 0;
  bool backfilled = false;   // final attempt started out of queue order
  bool deadline_met = false;
  SimTime enqueued = 0;      // night start
  SimTime started = -1;      // dispatch of the final attempt
  SimTime finished = -1;
  SimDuration wait = 0;      // first dispatch - enqueue (queueing delay)
  // The live monitor called this volume at-risk or breached while the night
  // was still running — a missed deadline with this false was silent.
  bool slo_flagged_live = false;
  std::vector<int> drives_used;                 // final attempt, pool indices
  std::vector<std::vector<std::string>> part_media;  // final media per part
  JobReport report;  // merged report of the final attempt
};

struct DriveNightStats {
  std::string name;
  int jobs = 0;
  bool failed = false;        // pulled from the pool after an unhealed fault
  SimDuration busy = 0;       // unit busy-time integral over the night
  double utilization = 0.0;   // busy / night elapsed
};

struct NightReport {
  std::vector<VolumeOutcome> volumes;
  std::vector<DriveNightStats> drives;
  std::vector<DriveGrant> grants;  // chronological drive occupancies
  uint64_t deadline_hits = 0;
  uint64_t deadline_misses = 0;
  uint64_t backfills = 0;
  uint64_t reassignments = 0;   // volume re-dispatches after a failed attempt
  uint64_t drives_failed = 0;
  uint64_t link_budget_waits = 0;  // dispatches deferred by the link budget
  // Periodic SLO health readings taken while the night ran (see
  // FleetConfig::health_sample_period) plus the monitor's final breach
  // count; the bench gate cross-checks these against deadline outcomes.
  std::vector<SloHealthSample> night_health;
  uint64_t slo_breaches = 0;
  SimTime night_start = 0;
  SimTime night_end = 0;
  Status status;  // first hard failure (a volume out of attempts), else OK
  SimDuration makespan() const { return night_end - night_start; }
  // Canonical text form of the executed schedule (grants + outcomes);
  // byte-identical across same-seed runs.
  std::string SerializeExecution() const;
  // The scheduler section of a BENCH_*.json report.
  void WriteJson(JsonWriter* w) const;
};

class NightlyScheduler {
 public:
  NightlyScheduler(Filer* filer, FleetConfig config,
                   std::vector<VolumeSpec> volumes);

  // The static simulated-time plan: the dispatch policy executed against
  // size estimates alone. Pure and deterministic; does not touch devices.
  NightPlan BuildPlan() const;

  // Executes the night. Spawn on the environment and run it to completion;
  // `done` counts down once every volume has finished or exhausted its
  // attempts.
  Task Run(NightReport* report, CountdownLatch* done);

  const std::vector<VolumeSpec>& volumes() const { return volumes_; }
  const FleetConfig& config() const { return config_; }

  // Estimated streaming duration for one volume on `drives` drives, from
  // its size estimate and the planning rate (exposed for tests/benches).
  SimDuration EstimatedDuration(const VolumeSpec& spec,
                                uint32_t drives) const;

 private:
  struct Completion;

  // Queue order: priority desc, deadline asc, name, index. Total.
  bool QueueBefore(size_t a, size_t b) const;
  // Latest start for `spec` to make its deadline under the planning model.
  SimTime LatestFeasibleStart(const VolumeSpec& spec) const;

  Task RunOne(size_t vol, int attempt, std::vector<int> drive_idx,
              std::vector<Tape*> primaries,
              std::vector<std::vector<Tape*>> spares,
              uint64_t link_reservation, Channel<Completion>* completions);
  // Fires a rescan of the dispatch queue at now + delay (deadline-fallback
  // boundaries are the only dispatch triggers that are not completions).
  // With `health` set the tick instead takes an SLO health sample.
  Task Waker(SimDuration delay, Channel<Completion>* completions,
             bool health = false);

  Filer* filer_;
  FleetConfig config_;
  std::vector<VolumeSpec> volumes_;
};

}  // namespace bkup

#endif  // BKUP_BACKUP_SCHEDULER_H_

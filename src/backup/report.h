// Job reports: the measurement side of the reproduction. Each backup or
// restore job fills one of these; the bench binaries print them in the shape
// of the paper's Tables 2-5.
#ifndef BKUP_BACKUP_REPORT_H_
#define BKUP_BACKUP_REPORT_H_

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "src/block/io_trace.h"
#include "src/content/content.h"
#include "src/sim/resource.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace bkup {

class JsonWriter;  // src/obs/json.h

// Accumulated activity of one job phase (one row of Table 3).
struct PhaseStats {
  SimTime start = -1;
  SimTime end = -1;
  int64_t cpu_busy_start = 0;
  int64_t cpu_busy_end = 0;
  uint64_t disk_bytes = 0;
  uint64_t tape_bytes = 0;
  uint64_t net_bytes = 0;  // stream payload sent/received over a NetLink

  bool active() const { return start >= 0; }
  SimDuration elapsed() const { return active() ? end - start : 0; }
  // Clamped to [0, 1]: a phase's busy-integral window is sampled at touch
  // points, so concurrent jobs' activity can bleed a few percent past the
  // phase's own share; the clamp keeps displayed utilizations sane.
  double CpuUtilization() const {
    const SimDuration e = elapsed();
    if (e <= 0) {
      return 0.0;
    }
    const double u = static_cast<double>(cpu_busy_end - cpu_busy_start) /
                     static_cast<double>(e);
    return u < 0.0 ? 0.0 : (u > 1.0 ? 1.0 : u);
  }
  // Device throughput over the phase window.
  double DiskMBps() const;
  double TapeMBps() const;
  double NetMBps() const;
};

// Recovery work a job performed in response to injected (or organic) device
// faults. All zero on a clean run; with the same fault plan, seed and
// workload, identical across runs — which is what makes fault scenarios
// regression-testable.
struct FaultCounters {
  uint64_t disk_io_errors = 0;         // failed timed disk accesses observed
  uint64_t disk_retries = 0;           // accesses re-issued after backoff
  uint64_t reconstruction_reads = 0;   // blocks served via RAID degraded path
  uint64_t spare_disks_used = 0;       // hot-spare swaps + rebuilds
  uint64_t tape_errors = 0;            // failed tape transfers observed
  uint64_t tape_retries = 0;           // transfers re-issued after backoff
  uint64_t tape_remounts = 0;          // media abandoned for a spare
  uint64_t bytes_rewritten = 0;        // stream bytes re-sent after remounts
  uint64_t files_skipped = 0;          // unreadable files dropped from a dump
  uint64_t link_errors = 0;            // stream connections that failed
  uint64_t link_retransmits = 0;       // frames re-sent inside a connection
  uint64_t link_reconnects = 0;        // fresh connections the supervisor made
  uint64_t link_bytes_resent = 0;      // stream bytes re-sent past the ack

  bool any() const {
    return disk_io_errors + disk_retries + reconstruction_reads +
               spare_disks_used + tape_errors + tape_retries + tape_remounts +
               bytes_rewritten + files_skipped + link_errors +
               link_retransmits + link_reconnects + link_bytes_resent >
           0;
  }
  void Add(const FaultCounters& o);
  bool operator==(const FaultCounters&) const = default;
};

// Crash-resume accounting of a restore job. All zero when the restore ran
// uninterrupted; deterministic per seed, like FaultCounters.
struct ResumeStats {
  uint64_t resumes = 0;          // process incarnations beyond the first
  uint64_t bytes_replayed = 0;   // stream bytes resumed attempts re-consumed
  uint64_t bytes_skipped = 0;    // stream bytes fast-forwarded via catalog
  uint64_t entries_skipped = 0;  // catalog entries proven already applied
  uint64_t checkpoints = 0;      // mid-run consistency points taken

  bool any() const {
    return resumes + bytes_replayed + bytes_skipped + entries_skipped +
               checkpoints >
           0;
  }
  void Add(const ResumeStats& o);
  bool operator==(const ResumeStats&) const = default;
};

struct JobReport {
  std::string name;
  SimTime start_time = 0;
  SimTime end_time = 0;
  uint64_t stream_bytes = 0;  // backup/restore payload moved
  uint64_t data_bytes = 0;    // user data represented by the stream
  std::vector<std::string> tapes_used;  // media labels, in mount order
  // Media that actually hold the stream at job end: like tapes_used but with
  // media abandoned after an error dropped. Restores of a supervised backup
  // must read this set, in this order.
  std::vector<std::string> final_media;
  FaultCounters faults;
  ResumeStats resume;
  // Content-stage accounting (all zero when no stage is enabled). For jobs
  // with stages on, stream_bytes stays in raw coordinates while
  // content.wire_bytes is what tapes/links actually moved.
  ContentStats content;
  Status status;
  std::array<PhaseStats, static_cast<int>(JobPhase::kCount)> phases{};

  PhaseStats& phase(JobPhase p) { return phases[static_cast<int>(p)]; }
  const PhaseStats& phase(JobPhase p) const {
    return phases[static_cast<int>(p)];
  }

  SimDuration elapsed() const { return end_time - start_time; }

  // Fixed snapshot bookkeeping time; independent of data volume, so rates
  // exclude it (at the paper's 188 GB it is negligible; at bench scale it
  // would swamp the signal).
  SimDuration SnapshotOverhead() const {
    return phase(JobPhase::kCreateSnapshot).elapsed() +
           phase(JobPhase::kDeleteSnapshot).elapsed();
  }
  SimDuration StreamElapsed() const { return elapsed() - SnapshotOverhead(); }

  double BytesPerSecond() const {
    const SimDuration e = StreamElapsed();
    return e > 0 ? static_cast<double>(data_bytes) / SimToSeconds(e) : 0.0;
  }
  double MBps() const { return BytesPerSecToMBps(BytesPerSecond()); }
  double GBph() const { return BytesPerSecToGBph(BytesPerSecond()); }

  // Whole-job CPU utilization.
  double CpuUtilization() const;
  // CPU utilization over the streaming window, excluding the fixed
  // snapshot-bookkeeping phases.
  double StreamCpuUtilization() const;
  int64_t cpu_busy_start = 0;
  int64_t cpu_busy_end = 0;

  // Aggregate device throughput over the job window (the Disk MB/s and
  // Tape MB/s columns of Tables 4-5).
  uint64_t total_disk_bytes() const;
  uint64_t total_tape_bytes() const;
  uint64_t total_net_bytes() const;
  // Device throughput over the streaming window.
  double DiskMBps() const;
  double TapeMBps() const;
  // Link payload throughput over the streaming window (remote jobs only;
  // zero for local jobs, which never touch a NetLink).
  double NetMBps() const;

  // Prints "Operation / Elapsed / MB/s / GB/h" (Table 2 row).
  void PrintSummaryRow(FILE* out) const;
  // Prints the per-stage breakdown (Table 3 rows) with per-phase device
  // throughput.
  void PrintPhaseRows(FILE* out) const;

  // Serializes the whole report — summary, fault counters, per-phase stats —
  // as one JSON object (the per-job section of a BENCH_*.json file).
  void WriteJson(JsonWriter* w) const;

  // Marks activity of `p` at the current time with the CPU busy integral.
  void TouchPhase(JobPhase p, SimTime now, int64_t cpu_busy);
};

// Merges parallel per-tape reports into one operation-level report (the
// Table 4/5 view of N concurrent jobs).
JobReport MergeReports(const std::string& name,
                       std::span<const JobReport> parts);

}  // namespace bkup

#endif  // BKUP_BACKUP_REPORT_H_

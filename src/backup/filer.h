// The simulated filer: CPU-cost model and shared resources, calibrated to
// the paper's testbed (§5): a NetApp F630 — 500 MHz Alpha 21164A, 512 MB
// RAM, 32 MB NVRAM, FC-AL disks, DLT-7000 drives on dedicated SCSI
// adapters.
//
// Cost constants are chosen so the *measured* behaviour of the simulated
// filer matches the paper's published utilizations (Table 3): logical dump
// ~25-30% CPU at tape speed, physical dump ~5%, logical restore 30-40%,
// physical restore ~11%, with snapshot create/delete costing tens of
// seconds at ~50% CPU. EXPERIMENTS.md records the calibration.
#ifndef BKUP_BACKUP_FILER_H_
#define BKUP_BACKUP_FILER_H_

#include <array>
#include <string>
#include <vector>

#include "src/block/io_trace.h"
#include "src/sim/environment.h"
#include "src/sim/resource.h"
#include "src/util/units.h"

namespace bkup {

struct FilerModel {
  // Per-unit CPU time for each work class, microseconds.
  std::array<SimDuration, kNumCpuCosts> cpu_cost_us{};

  // NVRAM log copy bandwidth; logical restore funnels every byte through
  // it, physical restore bypasses it entirely.
  double nvram_mb_per_s = 16.0;

  // Snapshot bookkeeping (Table 3: ~30 s create / ~35 s delete, ~50% CPU).
  SimDuration snapshot_create_time = 30 * kSecond;
  SimDuration snapshot_delete_time = 35 * kSecond;
  double snapshot_cpu_fraction = 0.5;

  // The F630 as configured in §5.
  static FilerModel F630();

  SimDuration CostOf(const std::vector<CpuCharge>& charges) const {
    SimDuration total = 0;
    for (const CpuCharge& c : charges) {
      total += cpu_cost_us[static_cast<int>(c.kind)] *
               static_cast<SimDuration>(c.count);
    }
    return total;
  }
};

// Shared execution context for backup jobs running on one filer.
class Filer {
 public:
  Filer(SimEnvironment* env, FilerModel model)
      : env_(env),
        model_(model),
        cpu_(env, 1, "filer.cpu"),
        nvram_port_(env, 1, "filer.nvram") {}

  SimEnvironment* env() { return env_; }
  const FilerModel& model() const { return model_; }
  Resource& cpu() { return cpu_; }
  Resource& nvram_port() { return nvram_port_; }

  // Holds the CPU for the model cost of `charges`. `priority` is the CPU
  // scheduling class (kPriorityBackground demotes a QoS-throttled dump
  // behind foreground work).
  Task ChargeCpu(const std::vector<CpuCharge>& charges,
                 int priority = kPriorityForeground) {
    const SimDuration cost = model_.CostOf(charges);
    if (cost > 0) {
      co_await cpu_.Use(1, cost, priority);
    }
  }

  // Streams `bytes` through the NVRAM log port.
  Task ChargeNvram(uint64_t bytes, int priority = kPriorityForeground) {
    const SimDuration cost = SecondsToSim(
        static_cast<double>(bytes) / (model_.nvram_mb_per_s * 1e6));
    if (cost > 0) {
      co_await nvram_port_.Use(1, cost, priority);
    }
  }

 private:
  SimEnvironment* env_;
  FilerModel model_;
  Resource cpu_;
  Resource nvram_port_;
};

}  // namespace bkup

#endif  // BKUP_BACKUP_FILER_H_

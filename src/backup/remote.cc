#include "src/backup/remote.h"

#include <algorithm>
#include <cassert>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace bkup {

namespace {

// Sender side of one remote stream: a chain of StreamConns over the same
// byte span. The first connection carries the whole stream in the happy
// case; when a connection fails (a frame lost beyond its retransmit budget)
// the session drains it, reads its acked watermark, backs off per the
// supervisor's link_retry, and resends [acked, high-watermark) on a fresh
// connection — the network analogue of RecoverTapeWrite's remount ladder.
// The receiver consumes connections in order from `conns()` and drains each
// one's frames to end-of-stream, so its own write cursor always equals the
// acked watermark the next connection resumes from.
class StreamSession {
 public:
  StreamSession(SimEnvironment* env, NetLink* link, std::string name,
                std::span<const uint8_t> stream, const SupervisionPolicy* sup,
                JobReport* report, std::string server_node = "tape-server",
                BackupThrottle* throttle = nullptr)
      : env_(env),
        link_(link),
        name_(std::move(name)),
        server_node_(std::move(server_node)),
        stream_(stream),
        sup_(sup),
        report_(report),
        throttle_(throttle),
        conn_feed_(env, 16) {
    // One causal trace for the whole session: every connection, frame and
    // reconnect incarnation shares this id (no-op without a tracer).
    if (Tracer* tracer = env_->tracer()) {
      ctx_ = tracer->StartTrace();
    }
  }

  // The session's causal identity; incarnation climbs with each reconnect.
  const TraceContext& ctx() const { return ctx_; }

  // Opens the first connection; call (and await) before Send.
  Task Start() { co_await Connect(); }

  // The receiver's view: connections in the order they were made. Closed by
  // Finish once the stream (and any recovery) is complete.
  Channel<StreamConn*>& conns() { return conn_feed_; }

  // Ships stream[begin, end); *status is Ok unless the stream failed beyond
  // the reconnect budget. Ranges must be sent in order.
  Task Send(uint64_t begin, uint64_t end, uint32_t tag, Status* status) {
    last_tag_ = tag;
    hwm_ = std::max(hwm_, end);
    Status st;
    co_await conns_.back()->SendRange(stream_, begin, end, tag, &st);
    while (!st.ok() && CanRecover()) {
      co_await RecoverOnce(&st);
    }
    *status = st;
  }

  // Waits out everything in flight (recovering if the tail fails), then
  // signals end-of-stream to the receiver and settles the stats.
  Task Finish(Status* status) {
    Status st;
    while (true) {
      co_await conns_.back()->Drain(&st);
      if (st.ok() || !CanRecover()) {
        break;
      }
      co_await RecoverOnce(&st);
    }
    conns_.back()->CloseSend();
    conn_feed_.Close();
    for (const auto& conn : conns_) {
      report_->faults.link_retransmits += conn->stats().retransmits;
    }
    *status = st;
  }

 private:
  bool CanRecover() const {
    return sup_ != nullptr && attempts_ < sup_->link_retry.max_attempts;
  }

  Task Connect() {
    conns_.push_back(std::make_unique<StreamConn>(
        link_, name_ + "#" + std::to_string(conns_.size())));
    conns_.back()->set_throttle(throttle_);  // QoS survives reconnects
    conns_.back()->EnableTracing(ctx_, "filer", server_node_);
    co_await conn_feed_.Send(conns_.back().get());
  }

  // One reconnect: retire the failed connection, resume past its ack.
  Task RecoverOnce(Status* st) {
    StreamConn* old = conns_.back().get();
    ++report_->faults.link_errors;
    if (Tracer* tracer = env_->tracer()) {
      tracer->Instant(tracer->Track("faults"), "link.error", ctx_);
    }
    Status drain;  // already failed; we only need the in-flight frames done
    co_await old->Drain(&drain);
    old->CloseSend();
    acked_floor_ = std::max(acked_floor_, old->acked());
    ++attempts_;
    co_await env_->Delay(sup_->link_retry.BackoffBefore(attempts_));
    ++report_->faults.link_reconnects;
    // The fresh connection is a new incarnation of the same trace: its
    // spans and frames stay under one trace id, labeled with the count.
    ctx_ = ctx_.NextIncarnation();
    if (Tracer* tracer = env_->tracer()) {
      tracer->Instant(tracer->Track("faults"), "link.reconnect", ctx_);
    }
    report_->faults.link_bytes_resent += hwm_ - acked_floor_;
    co_await Connect();
    *st = Status::Ok();
    if (hwm_ > acked_floor_) {
      co_await conns_.back()->SendRange(stream_, acked_floor_, hwm_,
                                        last_tag_, st);
    }
  }

  SimEnvironment* env_;
  NetLink* link_;
  std::string name_;
  std::string server_node_;
  TraceContext ctx_;
  std::span<const uint8_t> stream_;
  const SupervisionPolicy* sup_;
  JobReport* report_;
  BackupThrottle* throttle_;
  Channel<StreamConn*> conn_feed_;
  std::vector<std::unique_ptr<StreamConn>> conns_;
  uint64_t hwm_ = 0;          // highest stream byte handed to Send
  uint64_t acked_floor_ = 0;  // resume point carried across reconnects
  int attempts_ = 0;          // reconnects made (cumulative budget)
  uint32_t last_tag_ = 0;
};

// Filer-side pump: forwards produced chunks into the stream session and
// attributes the shipped bytes to each chunk's phase. After an unrecoverable
// stream failure it keeps draining the channel (dropping the sends) so the
// producer can finish and the job fails cleanly instead of deadlocking.
Task NetSenderProc(Filer* filer, StreamSession* session,
                   Channel<StreamChunk>* chunks, const std::string& track,
                   JobReport* report, SimEvent* sender_done) {
  SimEnvironment* env = filer->env();
  ScopedTraceSpan span(env->tracer(), track.c_str(), "stream",
                       session->ctx());
  bool failed = false;
  while (true) {
    std::optional<StreamChunk> chunk = co_await chunks->Recv();
    if (!chunk.has_value()) {
      break;
    }
    if (failed) {
      continue;
    }
    Status st;
    co_await session->Send(chunk->begin, chunk->end,
                           static_cast<uint32_t>(chunk->phase), &st);
    report->phase(chunk->phase).net_bytes += chunk->end - chunk->begin;
    report->TouchPhase(chunk->phase, env->now(),
                       filer->cpu().BusyIntegral());
    if (!st.ok()) {
      failed = true;
      if (report->status.ok()) {
        report->status = st;
      }
    }
  }
  Status st;
  co_await session->Finish(&st);
  if (!st.ok() && report->status.ok()) {
    report->status = st;
  }
  sender_done->Notify();
}

// Server-side writer: drains each connection's in-order frames to the
// drive, spanning onto spare media when the mounted one fills and running
// the supervised retry/remount ladder on write errors — TapeWriterProc with
// a network where the channel used to be. `stream` stands in for the
// received payload bytes (the simulation ships offsets, not copies). The
// write cursor skips bytes a resumed connection replays that the tape
// already holds.
Task RemoteTapeWriterProc(Filer* filer, RemoteTarget target,
                          std::span<const uint8_t> stream,
                          Channel<StreamConn*>* conn_feed,
                          uint64_t chunk_bytes, JobReport* report,
                          SimEvent* writer_done, std::string server_node,
                          TraceContext ctx) {
  SimEnvironment* env = filer->env();
  // This coroutine *is* the server: its span lives on the server's process
  // row, under the same trace id as the filer-side spans and the frames.
  ScopedTraceSpan srv_span(env->tracer(), server_node,
                           ("srv:" + report->name).c_str(), "tape.write",
                           ctx);
  TapeDrive* tape = target.drive;
  size_t next_spare = 0;
  uint64_t media_start = 0;
  uint64_t written = 0;  // stream bytes on tape == delivered watermark
  if (tape->loaded()) {
    report->tapes_used.push_back(tape->tape()->label());
    report->final_media.push_back(tape->tape()->label());
  }
  while (true) {
    std::optional<StreamConn*> conn = co_await conn_feed->Recv();
    if (!conn.has_value()) {
      break;
    }
    while (true) {
      std::optional<StreamFrame> frame = co_await (*conn)->frames().Recv();
      if (!frame.has_value()) {
        break;
      }
      if (frame->end <= written) {
        continue;  // replayed prefix of a resumed connection
      }
      const uint64_t begin = std::max(frame->begin, written);
      const uint64_t n = frame->end - begin;
      if (tape->loaded() &&
          tape->position() + n > tape->tape()->capacity()) {
        if (next_spare < target.spare_tapes.size()) {
          co_await tape->TimedLoadMedia(target.spare_tapes[next_spare++]);
          report->tapes_used.push_back(tape->tape()->label());
          report->final_media.push_back(tape->tape()->label());
          media_start = begin;
        }  // else fall through: the write fails with NoSpace below
      }
      Status st;
      co_await tape->TimedWrite(stream.subspan(begin, n), &st);
      if (!st.ok() && target.supervision != nullptr) {
        co_await RecoverTapeWrite(env, tape, stream, begin, frame->end,
                                  target.spare_tapes, chunk_bytes,
                                  *target.supervision, &next_spare,
                                  &media_start, report, &st);
      }
      if (!st.ok() && report->status.ok()) {
        report->status = st;
      }
      written = frame->end;
      const JobPhase phase = static_cast<JobPhase>(frame->tag);
      report->TouchPhase(phase, env->now(), filer->cpu().BusyIntegral());
      report->phase(phase).tape_bytes += n;
    }
  }
  writer_done->Notify();
}

// Server-side reader: TapeReaderProc's loop, but each chunk read off the
// media is shipped to the filer through the stream session instead of being
// published as a bare watermark.
Task RemoteTapeReaderProc(Filer* filer, RemoteTarget target,
                          uint64_t total_bytes, uint64_t chunk_bytes,
                          StreamSession* session, JobReport* report,
                          SimEvent* reader_done, std::string server_node) {
  SimEnvironment* env = filer->env();
  ScopedTraceSpan srv_span(env->tracer(), server_node,
                           ("srv:" + report->name).c_str(), "tape.read",
                           session->ctx());
  TapeDrive* tape = target.drive;
  std::vector<uint8_t> scratch(chunk_bytes);
  size_t next_spare = 0;
  if (tape->loaded()) {
    report->tapes_used.push_back(tape->tape()->label());
  }
  uint64_t pos = 0;
  bool failed = false;
  while (pos < total_bytes) {
    uint64_t remaining_on_tape =
        tape->loaded() ? tape->tape()->size() - tape->position() : 0;
    if (remaining_on_tape == 0) {
      if (next_spare >= target.spare_tapes.size()) {
        if (report->status.ok()) {
          report->status = Corruption("multi-volume set ended early");
        }
        break;
      }
      co_await tape->TimedLoadMedia(target.spare_tapes[next_spare++]);
      report->tapes_used.push_back(tape->tape()->label());
      remaining_on_tape = tape->tape()->size();
    }
    const uint64_t n = std::min<uint64_t>(
        {chunk_bytes, total_bytes - pos, remaining_on_tape});
    Status st;
    co_await tape->TimedRead(std::span(scratch).first(n), &st);
    if (!st.ok() && target.supervision != nullptr) {
      const RetryPolicy& retry = target.supervision->tape_retry;
      int attempt = 1;
      while (!st.ok() && attempt < retry.max_attempts) {
        ++report->faults.tape_errors;
        ++report->faults.tape_retries;
        TRACE_INSTANT(env, "faults", "tape.retry");
        co_await env->Delay(retry.BackoffBefore(attempt));
        ++attempt;
        co_await tape->TimedRead(std::span(scratch).first(n), &st);
      }
      if (!st.ok()) {
        ++report->faults.tape_errors;
      }
    }
    if (!st.ok() && report->status.ok()) {
      report->status = st;
    }
    if (!failed) {
      Status sent;
      co_await session->Send(pos, pos + n, 0, &sent);
      if (!sent.ok()) {
        failed = true;
        if (report->status.ok()) {
          report->status = sent;
        }
      }
    }
    pos += n;
  }
  Status st;
  co_await session->Finish(&st);
  if (!st.ok() && report->status.ok()) {
    report->status = st;
  }
  reader_done->Notify();
}

// Wraps TapeServer::ReadRange so the progress channel closes and the
// completion event fires when the range (or its error) is done.
Task ReadRangeAndClose(TapeServer* server, TapeDrive* drive, uint64_t offset,
                       uint64_t length, uint64_t chunk_bytes,
                       Channel<uint64_t>* progress, Status* status,
                       SimEvent* done, TraceContext ctx) {
  co_await server->ReadRange(drive, offset, length, chunk_bytes, progress,
                             status, ctx);
  progress->Close();
  done->Notify();
}

// Server-side ranged reader: reads only `ranges` off the media through
// TapeServer::ReadRange and ships each piece to the filer at its absolute
// stream offset, so watermarks stay monotone across the gaps the tape never
// touches. Read errors retry the remainder of the range on the tape backoff
// schedule (ranged reads are idempotent).
Task RangedRemoteTapeReaderProc(Filer* filer, RemoteTarget target,
                                std::vector<StreamRange> ranges,
                                uint64_t chunk_bytes, StreamSession* session,
                                JobReport* report, SimEvent* reader_done) {
  SimEnvironment* env = filer->env();
  TapeDrive* tape = target.drive;
  if (tape->loaded()) {
    report->tapes_used.push_back(tape->tape()->label());
  }
  bool failed = false;
  for (const StreamRange& r : ranges) {
    uint64_t floor = r.begin;  // delivered-to-filer cursor within the range
    int attempt = 0;
    while (floor < r.end && !failed) {
      Channel<uint64_t> progress(env, 4);
      Status read_st;
      SimEvent range_done(env);
      env->Spawn(ReadRangeAndClose(target.server, tape, floor, r.end - floor,
                                   chunk_bytes, &progress, &read_st,
                                   &range_done, session->ctx()));
      while (true) {
        std::optional<uint64_t> watermark = co_await progress.Recv();
        if (!watermark.has_value()) {
          break;
        }
        Status sent;
        co_await session->Send(floor, *watermark, 0, &sent);
        floor = *watermark;
        if (!sent.ok()) {
          failed = true;
          if (report->status.ok()) {
            report->status = sent;
          }
        }
      }
      co_await range_done.Wait();
      if (read_st.ok() || failed) {
        break;
      }
      ++report->faults.tape_errors;
      if (target.supervision == nullptr ||
          attempt + 1 >= target.supervision->tape_retry.max_attempts) {
        if (report->status.ok()) {
          report->status = read_st;
        }
        failed = true;
        break;
      }
      ++report->faults.tape_retries;
      TRACE_INSTANT(env, "faults", "tape.retry");
      ++attempt;
      co_await env->Delay(
          target.supervision->tape_retry.BackoffBefore(attempt));
    }
    if (failed) {
      break;
    }
  }
  Status st;
  co_await session->Finish(&st);
  if (!st.ok() && report->status.ok()) {
    report->status = st;
  }
  reader_done->Notify();
}

// Filer-side receive adapter for restores: turns the in-order frames of the
// session's connections into the monotone arrived-bytes watermark
// ReplayConsumer expects.
Task WatermarkAdapter(Channel<StreamConn*>* conn_feed,
                      Channel<uint64_t>* out) {
  uint64_t hwm = 0;
  while (true) {
    std::optional<StreamConn*> conn = co_await conn_feed->Recv();
    if (!conn.has_value()) {
      break;
    }
    while (true) {
      std::optional<StreamFrame> frame = co_await (*conn)->frames().Recv();
      if (!frame.has_value()) {
        break;
      }
      if (frame->end > hwm) {
        hwm = frame->end;
        co_await out->Send(hwm);
      }
    }
  }
  out->Close();
}

// Backup-side replay over a link: ReplayProducer on the filer feeding
// NetSenderProc, RemoteTapeWriterProc on the server consuming the stream.
Task ReplayToNet(ReplayConfig cfg, RemoteTarget target, const IoTrace* trace,
                 std::span<const uint8_t> stream, JobReport* report,
                 CountdownLatch* done) {
  SimEnvironment* env = cfg.filer->env();
  const std::string track = "net:" + target.link->name();
  const std::string server_node =
      target.server != nullptr ? target.server->name() : "tape-server";

  // Content stages encode on the filer before the link: the session ships
  // the wire image, so the StreamConn throttle, the acked floor and any
  // reconnect resend all operate in post-stage coordinates — and a resend
  // replays already-encoded bytes without re-charging encode CPU.
  const bool content = target.content.enabled();
  std::vector<uint8_t> wire;
  FrameMap map;
  std::span<const uint8_t> wire_view = stream;
  if (content) {
    Result<EncodeResult> encoded = StagePipeline(target.content).Encode(stream);
    if (!encoded.ok()) {
      if (report->status.ok()) {
        report->status = encoded.status();
      }
      done->CountDown();
      co_return;
    }
    wire = std::move(encoded->wire);
    map = std::move(encoded->map);
    report->content.Add(encoded->stats);
    wire_view = wire;
  }

  StreamSession session(env, target.link, report->name, wire_view,
                        target.supervision, report, server_node,
                        target.qos.throttle);
  co_await session.Start();

  Channel<StreamChunk> chunks(env, cfg.pipeline_depth);
  SimEvent writer_done(env);
  SimEvent sender_done(env);
  env->Spawn(RemoteTapeWriterProc(cfg.filer, target, wire_view,
                                  &session.conns(), cfg.chunk_bytes, report,
                                  &writer_done, server_node, session.ctx()));
  env->Spawn(NetSenderProc(cfg.filer, &session, &chunks, track, report,
                           &sender_done));

  PhaseSpanner spans(env, report->name);
  if (content) {
    cfg.content = target.content;
    Channel<StreamChunk> raw_chunks(env, cfg.pipeline_depth);
    SimEvent adapter_done(env);
    env->Spawn(ContentChunkAdapter(cfg, &map, &raw_chunks, &chunks, report,
                                   &adapter_done));
    co_await ReplayProducer(cfg, trace, &raw_chunks, &spans, report);
    raw_chunks.Close();
    co_await adapter_done.Wait();
  } else {
    co_await ReplayProducer(cfg, trace, &chunks, &spans, report);
    chunks.Close();
  }
  co_await sender_done.Wait();
  co_await writer_done.Wait();
  spans.Close();
  report->stream_bytes += stream.size();
  done->CountDown();
}

// Restore-side replay over a link: RemoteTapeReaderProc on the server
// streaming to the filer, where ReplayConsumer charges CPU/NVRAM/disk as
// the bytes arrive.
Task ReplayFromNet(ReplayConfig cfg, RemoteTarget target, const IoTrace* trace,
                   std::span<const uint8_t> stream, JobReport* report,
                   CountdownLatch* done) {
  SimEnvironment* env = cfg.filer->env();
  const std::string server_node =
      target.server != nullptr ? target.server->name() : "tape-server";
  // With content stages, `stream` is the wire image the server's media hold
  // (the caller decoded it for the engine): the link moves wire bytes and
  // the filer translates watermarks back to raw, paying decode CPU.
  const bool content = cfg.content_map != nullptr;
  const uint64_t raw_bytes =
      content ? cfg.content_map->raw_total() : stream.size();
  StreamSession session(env, target.link, report->name, stream,
                        target.supervision, report, server_node,
                        target.qos.throttle);
  co_await session.Start();

  SimEvent reader_done(env);
  env->Spawn(RemoteTapeReaderProc(cfg.filer, target, stream.size(),
                                  cfg.chunk_bytes, &session, report,
                                  &reader_done, server_node));
  Channel<uint64_t> watermarks(env, cfg.pipeline_depth);
  Channel<uint64_t> wire_watermarks(env, cfg.pipeline_depth);
  SimEvent adapter_done(env);
  if (content) {
    env->Spawn(WatermarkAdapter(&session.conns(), &wire_watermarks));
    env->Spawn(ContentWatermarkAdapter(cfg, cfg.content_map, {},
                                       &wire_watermarks, &watermarks, report,
                                       &adapter_done));
  } else {
    env->Spawn(WatermarkAdapter(&session.conns(), &watermarks));
  }

  PhaseSpanner spans(env, report->name);
  co_await ReplayConsumer(cfg, trace, raw_bytes, &watermarks, &spans, report);
  co_await reader_done.Wait();
  if (content) {
    co_await adapter_done.Wait();
  }
  spans.Close();
  report->stream_bytes += raw_bytes;
  done->CountDown();
}

// Ranged restore-side replay over a link: only `ranges` leave the server.
Task ReplayFromNetRanges(ReplayConfig cfg, RemoteTarget target,
                         const IoTrace* trace,
                         std::span<const uint8_t> stream,
                         std::vector<StreamRange> ranges, JobReport* report,
                         CountdownLatch* done) {
  SimEnvironment* env = cfg.filer->env();
  // Resume/catalog offsets are raw; with content stages, the server's media
  // hold wire frames — translate to the frame-aligned wire cover and ship
  // only that (the O(file) guarantee in post-stage coordinates).
  const bool content = cfg.content_map != nullptr;
  std::vector<StreamRange> wire_ranges;
  if (content) {
    wire_ranges = cfg.content_map->WireRangesOf(ranges);
    ranges = wire_ranges;
  }
  uint64_t moved = 0;
  for (const StreamRange& r : ranges) {
    moved += r.size();
  }
  const uint64_t raw_bytes =
      content ? cfg.content_map->raw_total() : stream.size();
  const std::string server_node =
      target.server != nullptr ? target.server->name() : "tape-server";
  StreamSession session(env, target.link, report->name, stream,
                        target.supervision, report, server_node,
                        target.qos.throttle);
  co_await session.Start();

  SimEvent reader_done(env);
  env->Spawn(RangedRemoteTapeReaderProc(cfg.filer, target, std::move(ranges),
                                        cfg.chunk_bytes, &session, report,
                                        &reader_done));
  Channel<uint64_t> watermarks(env, cfg.pipeline_depth);
  Channel<uint64_t> wire_watermarks(env, cfg.pipeline_depth);
  SimEvent adapter_done(env);
  if (content) {
    env->Spawn(WatermarkAdapter(&session.conns(), &wire_watermarks));
    env->Spawn(ContentWatermarkAdapter(cfg, cfg.content_map,
                                       std::move(wire_ranges),
                                       &wire_watermarks, &watermarks, report,
                                       &adapter_done));
  } else {
    env->Spawn(WatermarkAdapter(&session.conns(), &watermarks));
  }

  PhaseSpanner spans(env, report->name);
  co_await ReplayConsumer(cfg, trace, raw_bytes, &watermarks, &spans, report);
  co_await reader_done.Wait();
  if (content) {
    co_await adapter_done.Wait();
  }
  spans.Close();
  report->stream_bytes += moved;
  done->CountDown();
}

ReplayConfig RemoteReplayConfig(Filer* filer, Volume* volume,
                                const RemoteTarget& target) {
  ReplayConfig cfg;
  cfg.filer = filer;
  cfg.volume = volume;
  cfg.supervision = target.supervision;
  // The producer's disk/CPU charges demote, but the byte cap is enforced at
  // the wire (StreamConn's per-frame acquire) — never both, or every byte
  // would be drawn from the bucket twice.
  cfg.qos.io_priority = target.qos.io_priority;
  return cfg;
}

// Concatenation of the server-side media set (restore input). Resent bytes
// were skipped at write time, so the media splice back into one stream.
std::vector<uint8_t> SpliceMedia(const RemoteTarget& target) {
  std::vector<uint8_t> stream;
  std::span<const uint8_t> first = target.drive->tape()->contents();
  stream.assign(first.begin(), first.end());
  for (Tape* t : target.spare_tapes) {
    stream.insert(stream.end(), t->contents().begin(), t->contents().end());
  }
  return stream;
}

Task RemoteImagePart(Filer* filer, Filesystem* fs, RemoteTarget target,
                     ImageDumpOptions options, ImageBackupJobResult* part,
                     CountdownLatch* latch) {
  SimEnvironment* env = filer->env();
  JobReport& report = part->report;
  report.name = "Remote physical backup [part " +
                std::to_string(options.part_index) + "/" +
                std::to_string(options.part_count) + "]";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  Result<ImageDumpOutput> dump = RunImageDump(fs->volume(), options);
  if (!dump.ok()) {
    report.status = dump.status();
    latch->CountDown();
    co_return;
  }
  part->dump = std::move(*dump);

  ReplayConfig cfg = RemoteReplayConfig(filer, fs->volume(), target);
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayToNet(cfg, target, &part->dump.trace, part->dump.stream,
                         &report, &replay_done));
  co_await replay_done.Wait();

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = part->dump.stats.blocks_dumped * kBlockSize;
  latch->CountDown();
}

}  // namespace

Task RemoteLogicalBackupJob(Filer* filer, Filesystem* fs, RemoteTarget target,
                            LogicalDumpOptions options,
                            LogicalBackupJobResult* result,
                            CountdownLatch* done) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Remote logical backup";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  const std::string snap =
      options.snapshot_name.empty() ? "dump.remote" : options.snapshot_name;
  options.snapshot_name = snap;
  report.status = fs->CreateSnapshot(snap);
  if (!report.status.ok()) {
    done->CountDown();
    co_return;
  }
  co_await SnapshotPhase(filer, &report, JobPhase::kCreateSnapshot,
                         filer->model().snapshot_create_time,
                         target.qos.io_priority);

  options.dump_time = env->now();
  if (target.supervision != nullptr &&
      target.supervision->skip_unreadable_files) {
    options.skip_unreadable = true;
  }
  Result<FsReader> reader = fs->SnapshotReader(snap);
  if (!reader.ok()) {
    report.status = reader.status();
    done->CountDown();
    co_return;
  }
  Result<LogicalDumpOutput> dump = RunLogicalDump(*reader, options);
  if (!dump.ok()) {
    report.status = dump.status();
    done->CountDown();
    co_return;
  }
  result->dump = std::move(*dump);
  report.faults.files_skipped += result->dump.stats.files_skipped;

  ReplayConfig cfg = RemoteReplayConfig(filer, fs->volume(), target);
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayToNet(cfg, target, &result->dump.trace,
                         result->dump.stream, &report, &replay_done));
  co_await replay_done.Wait();

  Status del = fs->DeleteSnapshot(snap);
  if (!del.ok() && report.status.ok()) {
    report.status = del;
  }
  co_await SnapshotPhase(filer, &report, JobPhase::kDeleteSnapshot,
                         filer->model().snapshot_delete_time,
                         target.qos.io_priority);

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->dump.stats.data_blocks * kBlockSize;
  done->CountDown();
}

Task RemoteLogicalRestoreJob(Filer* filer, Filesystem* fs, RemoteTarget target,
                             LogicalRestoreOptions options, bool bypass_nvram,
                             LogicalRestoreJobResult* result,
                             CountdownLatch* done) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = bypass_nvram ? "Remote logical restore (NVRAM bypass)"
                             : "Remote logical restore";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  if (!target.drive->loaded()) {
    report.status = FailedPrecondition("no tape loaded for restore");
    done->CountDown();
    co_return;
  }
  const std::vector<uint8_t> stream = SpliceMedia(target);

  // With content stages, the media hold the wire image: decode it for the
  // engine (verifying every store-backed frame); the replay below still
  // moves wire bytes over the link.
  FrameMap content_map;
  std::vector<uint8_t> decoded;
  std::span<const uint8_t> raw_stream = stream;
  if (target.content.enabled()) {
    Result<FrameMap> map = FrameMap::FromWire(stream);
    if (!map.ok()) {
      report.status = map.status();
      done->CountDown();
      co_return;
    }
    Result<std::vector<uint8_t>> raw =
        StagePipeline(target.content).Decode(stream, &report.content);
    if (!raw.ok()) {
      report.status = raw.status();
      done->CountDown();
      co_return;
    }
    content_map = std::move(*map);
    decoded = std::move(*raw);
    raw_stream = decoded;
  }

  fs->MarkCpCounters();
  Result<LogicalRestoreOutput> restored =
      RunLogicalRestore(fs, raw_stream, options);
  if (!restored.ok()) {
    report.status = restored.status();
    done->CountDown();
    co_return;
  }
  result->restore = std::move(*restored);

  const uint64_t data_writes = fs->cp_data_writes_since_mark();
  const uint64_t meta_writes = fs->cp_meta_writes_since_mark();
  ReplayConfig cfg = RemoteReplayConfig(filer, fs->volume(), target);
  cfg.charge_nvram = !bypass_nvram;
  cfg.count_net_bytes = true;
  cfg.write_meta_multiplier =
      data_writes > 0
          ? static_cast<double>(meta_writes) / static_cast<double>(data_writes)
          : 0.5;
  if (target.content.enabled()) {
    cfg.content = target.content;
    cfg.content_map = &content_map;
  }

  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayFromNet(cfg, target, &result->restore.trace, stream,
                           &report, &replay_done));
  co_await replay_done.Wait();

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->restore.stats.bytes_restored;
  done->CountDown();
}

Task RemoteSingleFileRestoreJob(Filer* filer, Filesystem* fs,
                                RemoteTarget target,
                                const TapeCatalog* catalog,
                                std::string path,  // by value: outlives spawn
                                LogicalRestoreOptions options,
                                bool bypass_nvram, LinkBudget* budget,
                                RemoteSingleFileRestoreResult* result,
                                CountdownLatch* done) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Remote single-file restore";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  if (!target.drive->loaded()) {
    report.status = FailedPrecondition("no tape loaded for restore");
    done->CountDown();
    co_return;
  }
  if (catalog == nullptr) {
    report.status = InvalidArgument("single-file restore needs a catalog");
    done->CountDown();
    co_return;
  }
  // Single-media only: the ranged reads address the mounted tape directly.
  const std::span<const uint8_t> stream = target.drive->tape()->contents();
  result->full_stream_bytes = stream.size();

  // With content stages, the tape holds the wire image: decode it for the
  // name table and the engine; budget and link accounting below move to
  // post-stage wire coordinates.
  const bool content = target.content.enabled();
  FrameMap content_map;
  std::vector<uint8_t> decoded;
  std::span<const uint8_t> raw_stream = stream;
  if (content) {
    Result<FrameMap> map = FrameMap::FromWire(stream);
    if (!map.ok()) {
      report.status = map.status();
      done->CountDown();
      co_return;
    }
    Result<std::vector<uint8_t>> raw =
        StagePipeline(target.content).Decode(stream, &report.content);
    if (!raw.ok()) {
      report.status = raw.status();
      done->CountDown();
      co_return;
    }
    content_map = std::move(*map);
    decoded = std::move(*raw);
    raw_stream = decoded;
  }
  // Catalog ranges are raw; what the link will move is their frame-aligned
  // wire cover.
  auto LinkSizeOf = [&](const std::vector<StreamRange>& raw_ranges) {
    uint64_t total = 0;
    if (content) {
      for (const StreamRange& r : content_map.WireRangesOf(raw_ranges)) {
        total += r.size();
      }
    } else {
      for (const StreamRange& r : raw_ranges) {
        total += r.size();
      }
    }
    return total;
  };

  // Reserve the link allowance up front from the catalog's estimate — the
  // ranges the restore will pull, known before any byte moves.
  uint64_t estimate = 0;
  {
    Result<RestoreCatalog> names = BuildRestoreCatalog(raw_stream);
    if (!names.ok()) {
      report.status = names.status();
      done->CountDown();
      co_return;
    }
    Result<Inum> selected = names->Namei(path);
    if (!selected.ok()) {
      report.status = selected.status();
      done->CountDown();
      co_return;
    }
    const std::vector<Inum> wanted = names->Descendants(*selected);
    estimate = LinkSizeOf(catalog->RestoreRanges(wanted));
  }
  if (budget != nullptr && !budget->TryReserve(estimate)) {
    result->budget_rejected = true;
    report.status = Exhausted("link budget rejected single-file restore");
    done->CountDown();
    co_return;
  }

  options.select = {path};
  options.catalog = catalog;
  fs->MarkCpCounters();
  Result<LogicalRestoreOutput> restored =
      RunLogicalRestore(fs, raw_stream, options);
  if (!restored.ok()) {
    if (budget != nullptr) {
      budget->Cancel(estimate);
    }
    report.status = restored.status();
    done->CountDown();
    co_return;
  }
  result->restore = std::move(*restored);

  const uint64_t data_writes = fs->cp_data_writes_since_mark();
  const uint64_t meta_writes = fs->cp_meta_writes_since_mark();
  ReplayConfig cfg = RemoteReplayConfig(filer, fs->volume(), target);
  cfg.charge_nvram = !bypass_nvram;
  cfg.count_net_bytes = true;
  cfg.write_meta_multiplier =
      data_writes > 0
          ? static_cast<double>(meta_writes) / static_cast<double>(data_writes)
          : 0.5;
  if (content) {
    cfg.content = target.content;
    cfg.content_map = &content_map;
  }

  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayFromNetRanges(cfg, target, &result->restore.trace, stream,
                                 result->restore.consumed_ranges, &report,
                                 &replay_done));
  co_await replay_done.Wait();

  result->link_bytes = LinkSizeOf(result->restore.consumed_ranges);
  if (budget != nullptr) {
    budget->Commit(estimate, result->link_bytes);
  }
  MetricsRegistry::Default()
      .GetCounter("restore.single_file.link_bytes")
      ->Increment(result->link_bytes);

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->restore.stats.bytes_restored;
  done->CountDown();
}

Task RemoteImageBackupJob(Filer* filer, Filesystem* fs, RemoteTarget target,
                          ImageDumpOptions options, bool delete_snapshot_after,
                          ImageBackupJobResult* result, CountdownLatch* done) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Remote physical backup";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  const std::string snap =
      options.snapshot_name.empty() ? "image.remote" : options.snapshot_name;
  options.snapshot_name = snap;
  const bool created_here = !fs->FindSnapshot(snap).ok();
  if (created_here) {
    report.status = fs->CreateSnapshot(snap);
    if (!report.status.ok()) {
      done->CountDown();
      co_return;
    }
    co_await SnapshotPhase(filer, &report, JobPhase::kCreateSnapshot,
                           filer->model().snapshot_create_time,
                           target.qos.io_priority);
  }

  options.dump_time = env->now();
  Result<ImageDumpOutput> dump = RunImageDump(fs->volume(), options);
  if (!dump.ok()) {
    report.status = dump.status();
    done->CountDown();
    co_return;
  }
  result->dump = std::move(*dump);

  ReplayConfig cfg = RemoteReplayConfig(filer, fs->volume(), target);
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayToNet(cfg, target, &result->dump.trace,
                         result->dump.stream, &report, &replay_done));
  co_await replay_done.Wait();

  if (delete_snapshot_after && created_here) {
    Status del = fs->DeleteSnapshot(snap);
    if (!del.ok() && report.status.ok()) {
      report.status = del;
    }
    co_await SnapshotPhase(filer, &report, JobPhase::kDeleteSnapshot,
                           filer->model().snapshot_delete_time,
                           target.qos.io_priority);
  }

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->dump.stats.blocks_dumped * kBlockSize;
  done->CountDown();
}

Task RemoteImageRestoreJob(Filer* filer, Volume* volume, RemoteTarget target,
                           ImageRestoreJobResult* result,
                           CountdownLatch* done) {
  SimEnvironment* env = filer->env();
  JobReport& report = result->report;
  report.name = "Remote physical restore";
  report.start_time = env->now();
  report.cpu_busy_start = filer->cpu().BusyIntegral();

  if (!target.drive->loaded()) {
    report.status = FailedPrecondition("no tape loaded for restore");
    done->CountDown();
    co_return;
  }
  const std::vector<uint8_t> stream = SpliceMedia(target);
  FrameMap content_map;
  std::vector<uint8_t> decoded;
  std::span<const uint8_t> raw_stream = stream;
  if (target.content.enabled()) {
    Result<FrameMap> map = FrameMap::FromWire(stream);
    if (!map.ok()) {
      report.status = map.status();
      done->CountDown();
      co_return;
    }
    Result<std::vector<uint8_t>> raw =
        StagePipeline(target.content).Decode(stream, &report.content);
    if (!raw.ok()) {
      report.status = raw.status();
      done->CountDown();
      co_return;
    }
    content_map = std::move(*map);
    decoded = std::move(*raw);
    raw_stream = decoded;
  }
  Result<ImageRestoreOutput> restored = RunImageRestore(volume, raw_stream);
  if (!restored.ok()) {
    report.status = restored.status();
    done->CountDown();
    co_return;
  }
  result->restore = std::move(*restored);

  ReplayConfig cfg = RemoteReplayConfig(filer, volume, target);
  cfg.charge_nvram = false;  // image restore bypasses the NVRAM log
  cfg.count_net_bytes = true;
  if (target.content.enabled()) {
    cfg.content = target.content;
    cfg.content_map = &content_map;
  }
  CountdownLatch replay_done(env, 1);
  env->Spawn(ReplayFromNet(cfg, target, &result->restore.trace, stream,
                           &report, &replay_done));
  co_await replay_done.Wait();

  report.end_time = env->now();
  report.cpu_busy_end = filer->cpu().BusyIntegral();
  report.data_bytes = result->restore.stats.blocks_restored * kBlockSize;
  done->CountDown();
}

Task ParallelRemoteImageBackupJob(Filer* filer, Filesystem* fs, NetLink* link,
                                  TapeServer* server,
                                  std::vector<TapeDrive*> drives,
                                  ImageDumpOptions base_options,
                                  bool delete_snapshot_after,
                                  const SupervisionPolicy* supervision,
                                  ParallelRemoteImageBackupResult* result,
                                  CountdownLatch* done, BackupQos qos,
                                  ContentConfig content) {
  assert(!drives.empty());
  SimEnvironment* env = filer->env();
  JobReport& control = result->control;
  control.name = "Parallel remote physical backup (control)";
  control.start_time = env->now();
  control.cpu_busy_start = filer->cpu().BusyIntegral();

  const std::string snap = base_options.snapshot_name.empty()
                               ? "image.remote.parallel"
                               : base_options.snapshot_name;
  const bool created_here = !fs->FindSnapshot(snap).ok();
  if (created_here) {
    control.status = fs->CreateSnapshot(snap);
    if (!control.status.ok()) {
      done->CountDown();
      co_return;
    }
    co_await SnapshotPhase(filer, &control, JobPhase::kCreateSnapshot,
                           filer->model().snapshot_create_time,
                           qos.io_priority);
  }

  CountdownLatch parts_done(env, static_cast<int>(drives.size()));
  for (size_t k = 0; k < drives.size(); ++k) {
    ImageDumpOptions options = base_options;
    options.snapshot_name = snap;
    options.part_index = static_cast<uint32_t>(k);
    options.part_count = static_cast<uint32_t>(drives.size());
    options.dump_time = env->now();
    RemoteTarget target;
    target.link = link;
    target.server = server;
    target.drive = drives[k];
    target.supervision = supervision;
    target.qos = qos;
    target.content = content;
    result->parts.push_back(std::make_unique<ImageBackupJobResult>());
    env->Spawn(RemoteImagePart(filer, fs, target, options,
                               result->parts.back().get(), &parts_done));
  }
  co_await parts_done.Wait();

  if (delete_snapshot_after && created_here) {
    Status del = fs->DeleteSnapshot(snap);
    if (!del.ok() && control.status.ok()) {
      control.status = del;
    }
    co_await SnapshotPhase(filer, &control, JobPhase::kDeleteSnapshot,
                           filer->model().snapshot_delete_time,
                           qos.io_priority);
  }
  control.end_time = env->now();
  control.cpu_busy_end = filer->cpu().BusyIntegral();

  std::vector<JobReport> reports{control};
  for (const auto& p : result->parts) {
    reports.push_back(p->report);
  }
  result->merged = MergeReports("Parallel remote physical backup", reports);
  done->CountDown();
}

}  // namespace bkup

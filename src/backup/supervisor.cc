#include "src/backup/supervisor.h"

namespace bkup {

DiskFaultPolicy SupervisionPolicy::MakeDiskPolicy(
    FaultCounters* counters) const {
  DiskFaultPolicy policy;
  policy.retry = disk_retry;
  policy.reconstruct_on_failure = reconstruct_on_disk_failure;
  policy.hot_spares = hot_spare_disks;
  policy.counters = counters;
  return policy;
}

// The supervised jobs are the plain jobs with the policy threaded through;
// the recovery logic itself lives in the replay pipelines (jobs.cc) and the
// disk-charging layer (charge.cc), where the failures surface.

Task SupervisedLogicalBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                                LogicalDumpOptions options,
                                const SupervisionPolicy* policy,
                                LogicalBackupJobResult* result,
                                CountdownLatch* done,
                                std::vector<Tape*> spare_tapes) {
  return LogicalBackupJob(filer, fs, tape, std::move(options), result, done,
                          std::move(spare_tapes), policy);
}

Task SupervisedLogicalRestoreJob(Filer* filer, Filesystem* fs,
                                 TapeDrive* tape,
                                 LogicalRestoreOptions options,
                                 bool bypass_nvram,
                                 const SupervisionPolicy* policy,
                                 LogicalRestoreJobResult* result,
                                 CountdownLatch* done,
                                 std::vector<Tape*> spare_tapes) {
  return LogicalRestoreJob(filer, fs, tape, std::move(options), bypass_nvram,
                           result, done, std::move(spare_tapes), policy);
}

Task SupervisedImageBackupJob(Filer* filer, Filesystem* fs, TapeDrive* tape,
                              ImageDumpOptions options,
                              bool delete_snapshot_after,
                              const SupervisionPolicy* policy,
                              ImageBackupJobResult* result,
                              CountdownLatch* done,
                              std::vector<Tape*> spare_tapes) {
  return ImageBackupJob(filer, fs, tape, std::move(options),
                        delete_snapshot_after, result, done,
                        std::move(spare_tapes), policy);
}

Task SupervisedImageRestoreJob(Filer* filer, Volume* volume, TapeDrive* tape,
                               const SupervisionPolicy* policy,
                               ImageRestoreJobResult* result,
                               CountdownLatch* done,
                               std::vector<Tape*> spare_tapes) {
  return ImageRestoreJob(filer, volume, tape, result, done,
                         std::move(spare_tapes), policy);
}

}  // namespace bkup

#include "src/backup/filer.h"

namespace bkup {

FilerModel FilerModel::F630() {
  FilerModel m;
  auto set = [&m](CpuCost kind, SimDuration us) {
    m.cpu_cost_us[static_cast<int>(kind)] = us;
  };
  // Calibration targets (Table 3, 188 GB at DLT streaming speed):
  //   logical dump "dumping files" ~25% CPU at ~8 MB/s  -> ~120 us / 4 KB
  //   physical dump ~5% CPU at ~8.7 MB/s                -> ~22 us / 4 KB
  //   logical restore "filling in data" ~40% at ~8 MB/s -> ~190 us / 4 KB
  //   physical restore ~11% at ~9 MB/s                  -> ~48 us / 4 KB
  //   mapping ~20 min at 30% CPU for a large volume     -> ~150 us / inode
  set(CpuCost::kMapInode, 150);
  set(CpuCost::kDirEntry, 25);
  set(CpuCost::kLogicalBlock, 130);
  set(CpuCost::kHeaderFormat, 300);
  set(CpuCost::kPhysicalBlock, 22);
  set(CpuCost::kRestoreCreate, 700);
  set(CpuCost::kRestoreLogicalBlock, 300);
  set(CpuCost::kRestorePhysicalBlock, 48);
  set(CpuCost::kNvramByte, 0);  // modeled by the NVRAM port bandwidth
  set(CpuCost::kPathLookup, 120);
  return m;
}

}  // namespace bkup

#include "src/dump/catalog.h"

#include <algorithm>
#include <deque>

#include "src/fs/reader.h"

namespace bkup {

void RestoreCatalog::AddDirectory(Inum inum, const DumpInodeAttrs& attrs,
                                  std::vector<DirEntry> entries) {
  DirInfo info;
  info.attrs = attrs;
  info.entries = std::move(entries);
  dirs_[inum] = std::move(info);
  finalized_ = false;
}

Status RestoreCatalog::Finalize() {
  links_.clear();
  for (const auto& [dir, info] : dirs_) {
    for (const DirEntry& e : info.entries) {
      links_[e.inum].emplace_back(dir, e.name);
    }
  }
  // The root is the directory that no other directory references.
  root_ = kInvalidInum;
  for (const auto& [dir, info] : dirs_) {
    if (links_.count(dir) == 0) {
      if (root_ != kInvalidInum) {
        return Corruption("catalog has multiple roots");
      }
      root_ = dir;
    }
  }
  if (root_ == kInvalidInum && !dirs_.empty()) {
    return Corruption("catalog has no root (directory cycle?)");
  }
  finalized_ = true;
  return Status::Ok();
}

Result<DumpInodeAttrs> RestoreCatalog::DirAttrs(Inum inum) const {
  auto it = dirs_.find(inum);
  if (it == dirs_.end()) {
    return NotFound("directory not in catalog");
  }
  return it->second.attrs;
}

Result<std::vector<DirEntry>> RestoreCatalog::DirEntries(Inum inum) const {
  auto it = dirs_.find(inum);
  if (it == dirs_.end()) {
    return NotFound("directory not in catalog");
  }
  return it->second.entries;
}

Result<Inum> RestoreCatalog::Namei(const std::string& path) const {
  if (!finalized_) {
    return FailedPrecondition("catalog not finalized");
  }
  BKUP_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Inum current = root_;
  for (const std::string& part : parts) {
    auto it = dirs_.find(current);
    if (it == dirs_.end()) {
      return NotFound("'" + part + "': parent directory not on this tape");
    }
    const auto& entries = it->second.entries;
    const auto e =
        std::find_if(entries.begin(), entries.end(),
                     [&part](const DirEntry& d) { return d.name == part; });
    if (e == entries.end()) {
      return NotFound("'" + part + "' not found on this tape");
    }
    current = e->inum;
  }
  return current;
}

std::string RestoreCatalog::PathOfDir(Inum inum) const {
  if (inum == root_) {
    return "/";
  }
  auto it = links_.find(inum);
  if (it == links_.end() || it->second.empty()) {
    return "";
  }
  const auto& [parent, name] = it->second.front();
  const std::string prefix = PathOfDir(parent);
  if (prefix.empty()) {
    return "";
  }
  return prefix == "/" ? "/" + name : prefix + "/" + name;
}

std::vector<std::string> RestoreCatalog::PathsOf(Inum inum) const {
  std::vector<std::string> out;
  if (inum == root_) {
    out.push_back("/");
    return out;
  }
  auto it = links_.find(inum);
  if (it == links_.end()) {
    return out;
  }
  for (const auto& [parent, name] : it->second) {
    const std::string prefix = PathOfDir(parent);
    if (prefix.empty()) {
      continue;
    }
    out.push_back(prefix == "/" ? "/" + name : prefix + "/" + name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Inum> RestoreCatalog::Descendants(Inum inum) const {
  std::vector<Inum> out;
  std::deque<Inum> queue{inum};
  while (!queue.empty()) {
    const Inum cur = queue.front();
    queue.pop_front();
    out.push_back(cur);
    auto it = dirs_.find(cur);
    if (it == dirs_.end()) {
      continue;
    }
    for (const DirEntry& e : it->second.entries) {
      queue.push_back(e.inum);
    }
  }
  return out;
}

void RestoreCatalog::ForEachDirTopDown(
    const std::function<void(Inum, const std::string&)>& fn) const {
  if (root_ == kInvalidInum) {
    return;
  }
  std::deque<std::pair<Inum, std::string>> queue{{root_, "/"}};
  while (!queue.empty()) {
    auto [inum, path] = queue.front();
    queue.pop_front();
    fn(inum, path);
    auto it = dirs_.find(inum);
    if (it == dirs_.end()) {
      continue;
    }
    for (const DirEntry& e : it->second.entries) {
      if (e.type == InodeType::kDirectory && dirs_.count(e.inum) != 0) {
        queue.emplace_back(
            e.inum, path == "/" ? "/" + e.name : path + "/" + e.name);
      }
    }
  }
}

}  // namespace bkup

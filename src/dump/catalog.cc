#include "src/dump/catalog.h"

#include <algorithm>
#include <deque>

#include "src/fs/layout.h"
#include "src/fs/reader.h"
#include "src/obs/metrics.h"
#include "src/util/checksum.h"
#include "src/util/serdes.h"

namespace bkup {

void RestoreCatalog::AddDirectory(Inum inum, const DumpInodeAttrs& attrs,
                                  std::vector<DirEntry> entries) {
  DirInfo info;
  info.attrs = attrs;
  info.entries = std::move(entries);
  dirs_[inum] = std::move(info);
  finalized_ = false;
}

Status RestoreCatalog::Finalize() {
  links_.clear();
  for (const auto& [dir, info] : dirs_) {
    for (const DirEntry& e : info.entries) {
      links_[e.inum].emplace_back(dir, e.name);
    }
  }
  // The root is the directory that no other directory references.
  root_ = kInvalidInum;
  for (const auto& [dir, info] : dirs_) {
    if (links_.count(dir) == 0) {
      if (root_ != kInvalidInum) {
        return Corruption("catalog has multiple roots");
      }
      root_ = dir;
    }
  }
  if (root_ == kInvalidInum && !dirs_.empty()) {
    return Corruption("catalog has no root (directory cycle?)");
  }
  finalized_ = true;
  return Status::Ok();
}

Result<DumpInodeAttrs> RestoreCatalog::DirAttrs(Inum inum) const {
  auto it = dirs_.find(inum);
  if (it == dirs_.end()) {
    return NotFound("directory not in catalog");
  }
  return it->second.attrs;
}

Result<std::vector<DirEntry>> RestoreCatalog::DirEntries(Inum inum) const {
  auto it = dirs_.find(inum);
  if (it == dirs_.end()) {
    return NotFound("directory not in catalog");
  }
  return it->second.entries;
}

Result<Inum> RestoreCatalog::Namei(const std::string& path) const {
  if (!finalized_) {
    return FailedPrecondition("catalog not finalized");
  }
  BKUP_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Inum current = root_;
  for (const std::string& part : parts) {
    auto it = dirs_.find(current);
    if (it == dirs_.end()) {
      return NotFound("'" + part + "': parent directory not on this tape");
    }
    const auto& entries = it->second.entries;
    const auto e =
        std::find_if(entries.begin(), entries.end(),
                     [&part](const DirEntry& d) { return d.name == part; });
    if (e == entries.end()) {
      return NotFound("'" + part + "' not found on this tape");
    }
    current = e->inum;
  }
  return current;
}

std::string RestoreCatalog::PathOfDir(Inum inum) const {
  if (inum == root_) {
    return "/";
  }
  auto it = links_.find(inum);
  if (it == links_.end() || it->second.empty()) {
    return "";
  }
  const auto& [parent, name] = it->second.front();
  const std::string prefix = PathOfDir(parent);
  if (prefix.empty()) {
    return "";
  }
  return prefix == "/" ? "/" + name : prefix + "/" + name;
}

std::vector<std::string> RestoreCatalog::PathsOf(Inum inum) const {
  std::vector<std::string> out;
  if (inum == root_) {
    out.push_back("/");
    return out;
  }
  auto it = links_.find(inum);
  if (it == links_.end()) {
    return out;
  }
  for (const auto& [parent, name] : it->second) {
    const std::string prefix = PathOfDir(parent);
    if (prefix.empty()) {
      continue;
    }
    out.push_back(prefix == "/" ? "/" + name : prefix + "/" + name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Inum> RestoreCatalog::Descendants(Inum inum) const {
  std::vector<Inum> out;
  std::deque<Inum> queue{inum};
  while (!queue.empty()) {
    const Inum cur = queue.front();
    queue.pop_front();
    out.push_back(cur);
    auto it = dirs_.find(cur);
    if (it == dirs_.end()) {
      continue;
    }
    for (const DirEntry& e : it->second.entries) {
      queue.push_back(e.inum);
    }
  }
  return out;
}

void RestoreCatalog::ForEachDirTopDown(
    const std::function<void(Inum, const std::string&)>& fn) const {
  if (root_ == kInvalidInum) {
    return;
  }
  std::deque<std::pair<Inum, std::string>> queue{{root_, "/"}};
  while (!queue.empty()) {
    auto [inum, path] = queue.front();
    queue.pop_front();
    fn(inum, path);
    auto it = dirs_.find(inum);
    if (it == dirs_.end()) {
      continue;
    }
    for (const DirEntry& e : it->second.entries) {
      if (e.type == InodeType::kDirectory && dirs_.count(e.inum) != 0) {
        queue.emplace_back(
            e.inum, path == "/" ? "/" + e.name : path + "/" + e.name);
      }
    }
  }
}

// ----------------------------------------------------------- TapeCatalog ---

namespace {

// Journal image layout: magic, version, then a frame sequence. Entry frames
// carry one record's (type, inum, offset, bytes); a checkpoint frame seals
// every frame before it with a CRC over the whole image prefix, so a loader
// can prove exactly how far the journal is intact.
constexpr uint32_t kCatalogMagic = 0xCA7A1099;
constexpr uint32_t kCatalogVersion = 1;
constexpr uint8_t kEntryFrame = 1;
constexpr uint8_t kCheckpointFrame = 2;

// Payload bytes following a record header of `rec` on the stream.
uint64_t RecordPayloadBytes(const DumpRecord& rec) {
  switch (rec.type) {
    case DumpRecordType::kUsedMap:
    case DumpRecordType::kDumpedMap:
      return rec.map_bytes;
    case DumpRecordType::kDirectory:
      return static_cast<uint64_t>(rec.present_count) * kDumpRecordSize;
    case DumpRecordType::kInode:
    case DumpRecordType::kAddr:
      return static_cast<uint64_t>(rec.present_count) * kBlockSize;
    default:
      return 0;
  }
}

}  // namespace

void CoalesceRanges(std::vector<StreamRange>* ranges) {
  size_t kept = 0;
  for (const StreamRange& r : *ranges) {
    if (r.begin >= r.end) {
      continue;
    }
    if (kept > 0 && r.begin <= (*ranges)[kept - 1].end) {
      (*ranges)[kept - 1].end = std::max((*ranges)[kept - 1].end, r.end);
    } else {
      (*ranges)[kept++] = r;
    }
  }
  ranges->resize(kept);
}

uint64_t TapeCatalog::stream_end() const {
  uint64_t end = 0;
  for (const Entry& e : entries_) {
    end = std::max(end, e.offset + e.bytes);
  }
  return end;
}

size_t TapeCatalog::first_file_entry() const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].type == DumpRecordType::kInode ||
        entries_[i].type == DumpRecordType::kAddr) {
      return i;
    }
  }
  return entries_.size();
}

uint64_t TapeCatalog::directory_end() const {
  const size_t i = first_file_entry();
  return i < entries_.size() ? entries_[i].offset : stream_end();
}

std::vector<TapeCatalog::Entry> TapeCatalog::RecordsOf(Inum inum) const {
  std::vector<Entry> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].type != DumpRecordType::kInode ||
        entries_[i].inum != inum) {
      continue;
    }
    out.push_back(entries_[i]);
    for (size_t j = i + 1; j < entries_.size() &&
                           entries_[j].type == DumpRecordType::kAddr &&
                           entries_[j].inum == inum;
         ++j) {
      out.push_back(entries_[j]);
    }
    break;
  }
  return out;
}

std::vector<StreamRange> TapeCatalog::RestoreRanges(
    std::span<const Inum> wanted) const {
  std::vector<StreamRange> ranges;
  ranges.push_back({0, directory_end()});
  for (Inum inum : wanted) {
    for (const Entry& e : RecordsOf(inum)) {
      ranges.push_back({e.offset, e.offset + e.bytes});
    }
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const StreamRange& a, const StreamRange& b) {
              return a.begin < b.begin;
            });
  CoalesceRanges(&ranges);
  return ranges;
}

std::vector<uint8_t> TapeCatalog::Serialize(uint32_t checkpoint_every) const {
  TapeCatalogWriter writer(checkpoint_every);
  for (const Entry& e : entries_) {
    writer.Add(e);
  }
  writer.Finish();
  return writer.TakeImage();
}

Result<TapeCatalog> TapeCatalog::Load(std::span<const uint8_t> image,
                                      LoadStats* stats) {
  MetricsRegistry& metrics = MetricsRegistry::Default();
  metrics.GetCounter("catalog.loads")->Increment();
  LoadStats local;
  ByteReader r(image);
  Result<uint32_t> magic = r.ReadU32();
  if (!magic.ok() || *magic != kCatalogMagic) {
    metrics.GetCounter("catalog.load_failures")->Increment();
    return Corruption("catalog image has no valid header");
  }
  Result<uint32_t> version = r.ReadU32();
  if (!version.ok() || *version != kCatalogVersion) {
    metrics.GetCounter("catalog.load_failures")->Increment();
    return Corruption("unsupported catalog version");
  }

  std::vector<Entry> staged;
  size_t sealed = 0;  // entries proven intact by the last valid checkpoint
  bool torn = false;
  while (!r.exhausted() && !torn) {
    Result<uint8_t> kind = r.ReadU8();
    if (!kind.ok()) {
      torn = true;
      break;
    }
    switch (*kind) {
      case kEntryFrame: {
        Result<uint8_t> type = r.ReadU8();
        Result<uint32_t> inum = r.ReadU32();
        Result<uint64_t> offset = r.ReadU64();
        Result<uint64_t> bytes = r.ReadU64();
        if (!type.ok() || !inum.ok() || !offset.ok() || !bytes.ok()) {
          torn = true;  // mid-entry truncation
          break;
        }
        staged.push_back(Entry{static_cast<DumpRecordType>(*type),
                               static_cast<Inum>(*inum), *offset, *bytes});
        break;
      }
      case kCheckpointFrame: {
        Result<uint64_t> count = r.ReadU64();
        Result<uint64_t> end = r.ReadU64();
        if (!count.ok() || !end.ok()) {
          torn = true;
          break;
        }
        const size_t crc_at = r.position();
        Result<uint32_t> crc = r.ReadU32();
        if (!crc.ok()) {
          torn = true;
          break;
        }
        if (*crc != Crc32c(image.first(crc_at)) || *count != staged.size()) {
          // A flip anywhere in the prefix fails every later checkpoint; the
          // last one that verified bounds what is trustworthy.
          torn = true;
          break;
        }
        sealed = staged.size();
        ++local.checkpoints_seen;
        break;
      }
      default:
        torn = true;  // unknown frame: treat like a torn tail
        break;
    }
  }

  if (local.checkpoints_seen == 0) {
    metrics.GetCounter("catalog.load_failures")->Increment();
    return Corruption("catalog has no intact checkpointed prefix");
  }
  local.truncated = torn || sealed < staged.size();
  local.entries_dropped = staged.size() - sealed;
  local.entries_loaded = sealed;
  staged.resize(sealed);

  metrics.GetCounter("catalog.entries_loaded")
      ->Increment(local.entries_loaded);
  metrics.GetCounter("catalog.entries_dropped")
      ->Increment(local.entries_dropped);
  if (local.truncated) {
    metrics.GetCounter("catalog.load_truncated")->Increment();
  }
  if (stats != nullptr) {
    *stats = local;
  }
  TapeCatalog catalog;
  catalog.entries_ = std::move(staged);
  return catalog;
}

Result<TapeCatalog> TapeCatalog::FromStream(std::span<const uint8_t> stream) {
  TapeCatalog catalog;
  uint64_t pos = 0;
  while (pos + kDumpRecordSize <= stream.size()) {
    Result<DumpRecord> rec =
        DumpRecord::Parse(stream.subspan(pos, kDumpRecordSize));
    if (!rec.ok()) {
      return Corruption("unparseable record while indexing stream");
    }
    if (rec->type == DumpRecordType::kEnd) {
      break;
    }
    const uint64_t payload = RecordPayloadBytes(*rec);
    if (pos + kDumpRecordSize + payload > stream.size()) {
      break;  // truncated tail: index what is whole
    }
    if (rec->type == DumpRecordType::kDirectory ||
        rec->type == DumpRecordType::kInode ||
        rec->type == DumpRecordType::kAddr) {
      catalog.Add(Entry{rec->type, rec->inum, pos,
                        kDumpRecordSize + payload});
    }
    pos += kDumpRecordSize + payload;
  }
  return catalog;
}

// ----------------------------------------------------- TapeCatalogWriter ---

TapeCatalogWriter::TapeCatalogWriter(uint32_t checkpoint_every)
    : checkpoint_every_(checkpoint_every == 0 ? 1 : checkpoint_every) {
  ByteWriter w(&image_);
  w.PutU32(kCatalogMagic);
  w.PutU32(kCatalogVersion);
}

void TapeCatalogWriter::Add(const TapeCatalog::Entry& entry) {
  ByteWriter w(&image_);
  w.PutU8(kEntryFrame);
  w.PutU8(static_cast<uint8_t>(entry.type));
  w.PutU32(entry.inum);
  w.PutU64(entry.offset);
  w.PutU64(entry.bytes);
  ++entries_;
  stream_end_ = std::max(stream_end_, entry.offset + entry.bytes);
  if (entries_ - entries_sealed_ >= checkpoint_every_) {
    Checkpoint();
  }
}

void TapeCatalogWriter::Finish() {
  if (entries_sealed_ < entries_ || checkpoints_written_ == 0) {
    Checkpoint();
  }
}

void TapeCatalogWriter::Checkpoint() {
  ByteWriter w(&image_);
  w.PutU8(kCheckpointFrame);
  w.PutU64(entries_);
  w.PutU64(stream_end_);
  w.PutU32(Crc32c(image_));
  entries_sealed_ = entries_;
  ++checkpoints_written_;
  MetricsRegistry::Default().GetCounter("catalog.checkpoints")->Increment();
}

// --------------------------------------------------- BuildRestoreCatalog ---

Result<RestoreCatalog> BuildRestoreCatalog(std::span<const uint8_t> stream) {
  RestoreCatalog catalog;
  uint64_t pos = 0;
  bool saw_header = false;
  while (pos + kDumpRecordSize <= stream.size()) {
    BKUP_ASSIGN_OR_RETURN(
        DumpRecord rec, DumpRecord::Parse(stream.subspan(pos, kDumpRecordSize)));
    pos += kDumpRecordSize;
    if (!saw_header) {
      if (rec.type != DumpRecordType::kTapeHeader) {
        return Corruption("stream does not start with a tape header");
      }
      saw_header = true;
      continue;
    }
    const uint64_t payload = RecordPayloadBytes(rec);
    if (pos + payload > stream.size()) {
      return Corruption("stream prologue truncated");
    }
    if (rec.type == DumpRecordType::kDirectory) {
      BKUP_ASSIGN_OR_RETURN(
          std::vector<DirEntry> entries,
          DecodeDumpDirectory(stream.subspan(pos, rec.payload_bytes)));
      catalog.AddDirectory(rec.inum, rec.attrs, std::move(entries));
    } else if (rec.type != DumpRecordType::kUsedMap &&
               rec.type != DumpRecordType::kDumpedMap) {
      break;  // first file record: the prologue is complete
    }
    pos += payload;
  }
  BKUP_RETURN_IF_ERROR(catalog.Finalize());
  return catalog;
}

}  // namespace bkup

// The dumpdates database: which (volume, subtree, level) was dumped when.
// The moral equivalent of BSD's /etc/dumpdates, used to pick an incremental
// dump's base: "the incremental dump backs up a file if it has changed since
// the previously recorded backup — the incremental's base. A standard dump
// incremental scheme begins at level 0 and extends to level 9."
#ifndef BKUP_DUMP_DUMPDATES_H_
#define BKUP_DUMP_DUMPDATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace bkup {

inline constexpr int kMaxDumpLevel = 9;

struct DumpDateEntry {
  std::string volume;
  std::string subtree;
  int level = 0;
  int64_t dump_time = 0;
  uint64_t fs_generation = 0;
  std::string snapshot_name;  // snapshot the dump was taken from
};

class DumpDates {
 public:
  // Records a completed dump, replacing any previous entry at that level.
  void Record(const DumpDateEntry& entry);

  // Base for an incremental: the most recent entry at a strictly lower
  // level. Level-0 dumps have no base. NotFound if no suitable base exists
  // (the caller must then fall back to a full dump, as dump(8) does).
  Result<DumpDateEntry> BaseFor(const std::string& volume,
                                const std::string& subtree, int level) const;

  const std::vector<DumpDateEntry>& entries() const { return entries_; }

  // Text round-trip, in the spirit of /etc/dumpdates.
  std::string Serialize() const;
  static Result<DumpDates> Deserialize(const std::string& text);

 private:
  std::vector<DumpDateEntry> entries_;
};

}  // namespace bkup

#endif  // BKUP_DUMP_DUMPDATES_H_

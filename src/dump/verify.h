// Dump stream verification — the guard against the paper's horror story:
// "system administrators attempting to restore file systems after a
// disaster occurs, only to discover that all the backup tapes made in the
// last year are not readable."
//
// Walks a logical dump stream end to end without touching any file system:
// checks every record header and data CRC, the record grammar (header,
// maps, directories before files, ascending inums, end marker), and that
// every inode marked in the dumped map actually appears on the tape — the
// role the paper assigns to the second tape bitmap ("the second map
// verifies the correctness of the restore").
#ifndef BKUP_DUMP_VERIFY_H_
#define BKUP_DUMP_VERIFY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/dump/format.h"
#include "src/util/status.h"

namespace bkup {

struct DumpVerifyReport {
  bool readable = false;  // overall verdict: safe to rely on this tape
  uint32_t level = 0;
  int64_t dump_time = 0;
  std::string volume_name;

  uint32_t directories = 0;
  uint32_t files = 0;
  uint64_t data_blocks = 0;
  uint32_t inodes_expected = 0;  // set bits in the dumped map
  uint32_t inodes_seen = 0;      // inode/directory records present

  uint32_t corrupt_records = 0;
  uint32_t data_crc_errors = 0;
  uint32_t out_of_order_records = 0;
  std::vector<Inum> missing_inodes;  // marked dumped but absent (capped)

  std::string Summary() const;
};

// Verifies a dump stream (e.g. `tape.contents()` right after a backup, the
// way a nightly script would run `restore -C`).
Result<DumpVerifyReport> VerifyDumpStream(std::span<const uint8_t> stream);

}  // namespace bkup

#endif  // BKUP_DUMP_VERIFY_H_

#include "src/dump/dumpdates.h"

#include <cstdio>
#include <sstream>

namespace bkup {

void DumpDates::Record(const DumpDateEntry& entry) {
  for (DumpDateEntry& e : entries_) {
    if (e.volume == entry.volume && e.subtree == entry.subtree &&
        e.level == entry.level) {
      e = entry;
      return;
    }
  }
  entries_.push_back(entry);
}

Result<DumpDateEntry> DumpDates::BaseFor(const std::string& volume,
                                         const std::string& subtree,
                                         int level) const {
  if (level == 0) {
    return NotFound("level-0 dumps have no base");
  }
  const DumpDateEntry* best = nullptr;
  for (const DumpDateEntry& e : entries_) {
    if (e.volume != volume || e.subtree != subtree || e.level >= level) {
      continue;
    }
    if (best == nullptr || e.dump_time > best->dump_time) {
      best = &e;
    }
  }
  if (best == nullptr) {
    return NotFound("no lower-level dump recorded for '" + volume + ":" +
                    subtree + "'");
  }
  return *best;
}

std::string DumpDates::Serialize() const {
  std::ostringstream out;
  for (const DumpDateEntry& e : entries_) {
    out << e.volume << '\t' << e.subtree << '\t' << e.level << '\t'
        << e.dump_time << '\t' << e.fs_generation << '\t' << e.snapshot_name
        << '\n';
  }
  return out.str();
}

Result<DumpDates> DumpDates::Deserialize(const std::string& text) {
  DumpDates db;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    DumpDateEntry e;
    if (!std::getline(fields, e.volume, '\t') ||
        !std::getline(fields, e.subtree, '\t')) {
      return Corruption("malformed dumpdates line: " + line);
    }
    std::string level_s, time_s, gen_s;
    if (!std::getline(fields, level_s, '\t') ||
        !std::getline(fields, time_s, '\t') ||
        !std::getline(fields, gen_s, '\t')) {
      return Corruption("malformed dumpdates line: " + line);
    }
    std::getline(fields, e.snapshot_name, '\t');
    try {
      e.level = std::stoi(level_s);
      e.dump_time = std::stoll(time_s);
      e.fs_generation = std::stoull(gen_s);
    } catch (...) {
      return Corruption("malformed dumpdates numbers: " + line);
    }
    if (e.level < 0 || e.level > kMaxDumpLevel) {
      return Corruption("dump level out of range: " + line);
    }
    db.entries_.push_back(std::move(e));
  }
  return db;
}

}  // namespace bkup

// Logical restore: rebuilds files from a dump stream through the file
// system, in both of the paper's modes:
//
//   * kPortable — the classic user-level BSD restore: files and directories
//     are created by pathname (namei per component), directory permissions
//     and times are fixed in a final pass "since creating the files might
//     have failed due to permission problems and definitely would have
//     affected the times".
//   * kKernel — the Network Appliance variant: runs as root inside the
//     filer, "directly creates the file handle from the inode number which
//     is stored in the dump stream", sets directory permissions at creation
//     and needs no final pass.
//
// Restores can be full, subtree, or single-file ("stupidity recovery"), and
// a chain of incrementals can be replayed on top of a level-0 restore using
// the restore symbol table to apply deletions and renames, exactly the role
// of BSD restore's restoresymtable.
#ifndef BKUP_DUMP_LOGICAL_RESTORE_H_
#define BKUP_DUMP_LOGICAL_RESTORE_H_

#include <map>
#include <string>
#include <vector>

#include "src/block/io_trace.h"
#include "src/dump/catalog.h"
#include "src/fs/filesystem.h"
#include "src/util/status.h"

namespace bkup {

// Maps dumped inums to their current path on the target file system.
// Carried from one incremental restore to the next.
class RestoreSymtable {
 public:
  void Set(Inum dumped_inum, const std::string& path) {
    paths_[dumped_inum] = path;
  }
  void Erase(Inum dumped_inum) { paths_.erase(dumped_inum); }
  Result<std::string> PathOf(Inum dumped_inum) const;
  bool Has(Inum dumped_inum) const { return paths_.count(dumped_inum) != 0; }
  size_t size() const { return paths_.size(); }
  const std::map<Inum, std::string>& paths() const { return paths_; }

  // Rewrites every path under `old_prefix` after a directory rename.
  void RenamePrefix(const std::string& old_prefix,
                    const std::string& new_prefix);

  // Drops entries whose inum is not set in `used`, returning the dropped
  // paths (the files deleted between the base dump and this one).
  std::vector<std::pair<Inum, std::string>> DropMissing(const Bitmap& used);

  // Text round-trip, so applications can persist it between incrementals.
  std::string Serialize() const;
  static Result<RestoreSymtable> Deserialize(const std::string& text);

 private:
  std::map<Inum, std::string> paths_;
};

// Where a restore process is when a crash-fault engine is consulted.
enum class RestorePhase : uint8_t {
  kMaps,         // tape header and inode maps
  kDirectories,  // directory records (catalog build + tree skeleton)
  kFiles,        // file/addr records (create + fill data)
  kFinal,        // final pass (directory fixups, closing CP)
};

const char* RestorePhaseName(RestorePhase phase);

// Consulted by the restore engine after every applied record. Returning
// true kills the restore process on the spot: the run returns with
// `interrupted` set, no final pass, no closing consistency point — exactly
// the state a SIGKILL would leave. Implemented by the crash fault engine in
// src/faults (the dump-layer twin of DeviceFaultHook).
class RestoreKillHook {
 public:
  virtual ~RestoreKillHook() = default;
  virtual bool ShouldKill(RestorePhase phase, uint64_t entries_applied,
                          uint64_t stream_offset) = 0;
};

struct LogicalRestoreOptions {
  enum class Mode { kPortable, kKernel };
  Mode mode = Mode::kKernel;
  // Existing directory on the target file system to restore into.
  std::string target_dir = "/";
  // Dump-root-relative paths to extract; empty restores everything on the
  // tape. A directory path extracts its whole subtree.
  std::vector<std::string> select;
  // Incremental application: reconcile the target tree with the dump's view
  // (apply deletions and renames). Requires `symtable`.
  bool apply_moves_and_deletes = false;
  RestoreSymtable* symtable = nullptr;  // updated in place when non-null

  // --- crash-resumable recovery ---
  // The stream's offset index. With it the engine seeks between the record
  // extents it actually needs (selection and resume) instead of scanning
  // every record; without it, behaviour is the classic full scan.
  const TapeCatalog* catalog = nullptr;
  // Resume a killed restore: after the directory stage, diff `catalog`
  // against the target tree and fast-forward past every file that is
  // already complete, replaying only the missing suffix. Requires
  // `catalog`.
  bool resume = false;
  // Consistency-point cadence: one CP per this many applied records makes
  // restored state durable as the run goes, so a crash loses at most one
  // cadence of work. 0 = only the final pass's closing CP.
  uint32_t checkpoint_every = 0;
  // Crash injection point; null runs to completion.
  RestoreKillHook* kill = nullptr;
};

struct LogicalRestoreStats {
  uint32_t dirs_created = 0;
  uint32_t files_restored = 0;
  uint32_t symlinks_restored = 0;
  uint32_t hard_links_restored = 0;
  uint32_t files_deleted = 0;   // incremental reconciliation
  uint32_t dirs_renamed = 0;    // incremental reconciliation
  uint64_t data_blocks = 0;
  uint64_t bytes_restored = 0;
  uint32_t corrupt_records_skipped = 0;
  uint32_t files_lost_to_corruption = 0;
  // Crash-resumable recovery accounting.
  uint64_t bytes_replayed = 0;     // stream bytes this run consumed
  uint64_t bytes_skipped = 0;      // stream bytes fast-forwarded via catalog
  uint32_t entries_skipped = 0;    // catalog entries proven already applied
  uint32_t files_already_complete = 0;  // files the resume diff kept
  uint32_t checkpoints = 0;        // CPs run at the checkpoint cadence
};

struct LogicalRestoreOutput {
  IoTrace trace;
  LogicalRestoreStats stats;
  uint32_t level = 0;
  int64_t dump_time = 0;
  // True when a RestoreKillHook fired: the run stopped mid-stream with no
  // final pass and no closing consistency point.
  bool interrupted = false;
  // Where the kill (or the end of the stream) left the cursor.
  uint64_t stopped_at = 0;
  // The stream extents this run actually consumed, ascending and coalesced:
  // the prologue plus every replayed record. A timed or remote replay needs
  // to move exactly these bytes — the "bounded replay" guarantee.
  std::vector<StreamRange> consumed_ranges;
};

Result<LogicalRestoreOutput> RunLogicalRestore(
    Filesystem* fs, std::span<const uint8_t> stream,
    const LogicalRestoreOptions& options);

}  // namespace bkup

#endif  // BKUP_DUMP_LOGICAL_RESTORE_H_

// Logical restore: rebuilds files from a dump stream through the file
// system, in both of the paper's modes:
//
//   * kPortable — the classic user-level BSD restore: files and directories
//     are created by pathname (namei per component), directory permissions
//     and times are fixed in a final pass "since creating the files might
//     have failed due to permission problems and definitely would have
//     affected the times".
//   * kKernel — the Network Appliance variant: runs as root inside the
//     filer, "directly creates the file handle from the inode number which
//     is stored in the dump stream", sets directory permissions at creation
//     and needs no final pass.
//
// Restores can be full, subtree, or single-file ("stupidity recovery"), and
// a chain of incrementals can be replayed on top of a level-0 restore using
// the restore symbol table to apply deletions and renames, exactly the role
// of BSD restore's restoresymtable.
#ifndef BKUP_DUMP_LOGICAL_RESTORE_H_
#define BKUP_DUMP_LOGICAL_RESTORE_H_

#include <map>
#include <string>
#include <vector>

#include "src/block/io_trace.h"
#include "src/dump/catalog.h"
#include "src/fs/filesystem.h"
#include "src/util/status.h"

namespace bkup {

// Maps dumped inums to their current path on the target file system.
// Carried from one incremental restore to the next.
class RestoreSymtable {
 public:
  void Set(Inum dumped_inum, const std::string& path) {
    paths_[dumped_inum] = path;
  }
  void Erase(Inum dumped_inum) { paths_.erase(dumped_inum); }
  Result<std::string> PathOf(Inum dumped_inum) const;
  bool Has(Inum dumped_inum) const { return paths_.count(dumped_inum) != 0; }
  size_t size() const { return paths_.size(); }
  const std::map<Inum, std::string>& paths() const { return paths_; }

  // Rewrites every path under `old_prefix` after a directory rename.
  void RenamePrefix(const std::string& old_prefix,
                    const std::string& new_prefix);

  // Drops entries whose inum is not set in `used`, returning the dropped
  // paths (the files deleted between the base dump and this one).
  std::vector<std::pair<Inum, std::string>> DropMissing(const Bitmap& used);

  // Text round-trip, so applications can persist it between incrementals.
  std::string Serialize() const;
  static Result<RestoreSymtable> Deserialize(const std::string& text);

 private:
  std::map<Inum, std::string> paths_;
};

struct LogicalRestoreOptions {
  enum class Mode { kPortable, kKernel };
  Mode mode = Mode::kKernel;
  // Existing directory on the target file system to restore into.
  std::string target_dir = "/";
  // Dump-root-relative paths to extract; empty restores everything on the
  // tape. A directory path extracts its whole subtree.
  std::vector<std::string> select;
  // Incremental application: reconcile the target tree with the dump's view
  // (apply deletions and renames). Requires `symtable`.
  bool apply_moves_and_deletes = false;
  RestoreSymtable* symtable = nullptr;  // updated in place when non-null
};

struct LogicalRestoreStats {
  uint32_t dirs_created = 0;
  uint32_t files_restored = 0;
  uint32_t symlinks_restored = 0;
  uint32_t hard_links_restored = 0;
  uint32_t files_deleted = 0;   // incremental reconciliation
  uint32_t dirs_renamed = 0;    // incremental reconciliation
  uint64_t data_blocks = 0;
  uint64_t bytes_restored = 0;
  uint32_t corrupt_records_skipped = 0;
  uint32_t files_lost_to_corruption = 0;
};

struct LogicalRestoreOutput {
  IoTrace trace;
  LogicalRestoreStats stats;
  uint32_t level = 0;
  int64_t dump_time = 0;
};

Result<LogicalRestoreOutput> RunLogicalRestore(
    Filesystem* fs, std::span<const uint8_t> stream,
    const LogicalRestoreOptions& options);

}  // namespace bkup

#endif  // BKUP_DUMP_LOGICAL_RESTORE_H_

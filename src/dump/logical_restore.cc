#include "src/dump/logical_restore.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/util/checksum.h"

namespace bkup {

// ------------------------------------------------------- RestoreSymtable ---

Result<std::string> RestoreSymtable::PathOf(Inum dumped_inum) const {
  auto it = paths_.find(dumped_inum);
  if (it == paths_.end()) {
    return NotFound("inum not in restore symtable");
  }
  return it->second;
}

void RestoreSymtable::RenamePrefix(const std::string& old_prefix,
                                   const std::string& new_prefix) {
  for (auto& [inum, path] : paths_) {
    if (path.size() >= old_prefix.size() &&
        path.compare(0, old_prefix.size(), old_prefix) == 0) {
      path = new_prefix + path.substr(old_prefix.size());
    }
  }
}

std::vector<std::pair<Inum, std::string>> RestoreSymtable::DropMissing(
    const Bitmap& used) {
  std::vector<std::pair<Inum, std::string>> dropped;
  for (auto it = paths_.begin(); it != paths_.end();) {
    if (it->first < used.size() && used.Test(it->first)) {
      ++it;
    } else {
      dropped.emplace_back(it->first, it->second);
      it = paths_.erase(it);
    }
  }
  return dropped;
}

std::string RestoreSymtable::Serialize() const {
  std::ostringstream out;
  for (const auto& [inum, path] : paths_) {
    out << inum << '\t' << path << '\n';
  }
  return out.str();
}

Result<RestoreSymtable> RestoreSymtable::Deserialize(const std::string& text) {
  RestoreSymtable table;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Corruption("malformed symtable line: " + line);
    }
    try {
      table.Set(static_cast<Inum>(std::stoul(line.substr(0, tab))),
                line.substr(tab + 1));
    } catch (...) {
      return Corruption("malformed symtable inum: " + line);
    }
  }
  return table;
}

const char* RestorePhaseName(RestorePhase phase) {
  switch (phase) {
    case RestorePhase::kMaps:
      return "maps";
    case RestorePhase::kDirectories:
      return "directories";
    case RestorePhase::kFiles:
      return "files";
    case RestorePhase::kFinal:
      return "final";
  }
  return "?";
}

// ------------------------------------------------------------- internals ---

namespace {

// Joins the restore target directory with a dump-root-relative path.
std::string JoinTarget(const std::string& target, const std::string& rel) {
  if (rel == "/") {
    return target;
  }
  if (target == "/") {
    return rel;
  }
  return target + rel;
}

// Recursively removes a path (file, symlink, or directory tree).
Status RecursiveDelete(Filesystem* fs, const std::string& path,
                       uint32_t* deleted) {
  BKUP_ASSIGN_OR_RETURN(Inum inum, fs->LookupPath(path));
  BKUP_ASSIGN_OR_RETURN(InodeData attrs, fs->GetAttr(inum));
  if (attrs.type != InodeType::kDirectory) {
    BKUP_RETURN_IF_ERROR(fs->Unlink(path));
    ++*deleted;
    return Status::Ok();
  }
  BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, fs->ReadDir(inum));
  for (const DirEntry& e : entries) {
    BKUP_RETURN_IF_ERROR(
        RecursiveDelete(fs, path + "/" + e.name, deleted));
  }
  BKUP_RETURN_IF_ERROR(fs->Rmdir(path));
  ++*deleted;
  return Status::Ok();
}

size_t PathDepth(const std::string& path) {
  size_t n = 0;
  for (char c : path) {
    n += c == '/' ? 1 : 0;
  }
  return n;
}

class RestoreRun {
 public:
  RestoreRun(Filesystem* fs, std::span<const uint8_t> stream,
             const LogicalRestoreOptions& options)
      : fs_(fs), stream_(stream), opt_(options) {}

  Result<LogicalRestoreOutput> Run();

 private:
  IoEvent& Event(JobPhase phase) {
    out_.trace.events.emplace_back();
    out_.trace.events.back().phase = phase;
    out_.trace.events.back().stream_end = pos_;
    return out_.trace.events.back();
  }

  // Parses the record at pos_, resynchronizing on corruption by scanning
  // forward at 1 KB boundaries. Returns NotFound at end of stream.
  Result<DumpRecord> NextRecord();

  Status ReadMaps();
  Status HandleDirectory(const DumpRecord& rec);
  Status FinishDirectoryStage();
  Status ComputeSelection();
  Status ApplyMoves();
  Status CreateDirectories();
  Status ApplyDeletes();
  Status HandleFileRecord(const DumpRecord& rec);
  Status FinalizeOpenFile();
  Status FinalPass();

  // Crash-resumable recovery (active when opt_.catalog is set and the run
  // resumes or selects): seek between needed record extents via the catalog
  // instead of scanning every record.
  Status MaybePlanAndSkip(bool* stop);
  Status BuildReplayPlan();
  Result<bool> EntryComplete(const TapeCatalog::Entry& entry);
  // Applies one record's worth of progress bookkeeping: the CP cadence and
  // the kill hook. True = the process just died.
  bool Applied(RestorePhase phase);
  void Jump(uint64_t to);
  Result<LogicalRestoreOutput> Finish();

  Filesystem* fs_;
  std::span<const uint8_t> stream_;
  const LogicalRestoreOptions& opt_;
  LogicalRestoreOutput out_;
  uint64_t pos_ = 0;

  RestoreCatalog catalog_;
  Bitmap used_;
  Bitmap dumped_;
  bool dirs_done_ = false;

  bool restore_all_ = true;
  std::set<Inum> wanted_;

  std::map<Inum, Inum> inum_map_;  // dumped inum -> target fs inum
  std::map<Inum, std::string> fs_path_of_;  // dumped inum -> primary fs path

  // Directory attribute fixups for the final pass.
  std::vector<std::pair<std::string, DumpInodeAttrs>> dir_fixups_;

  bool stream_exhausted_ = false;

  // Currently-open file being filled from kInode/kAddr records.
  Inum open_dumped_ = kInvalidInum;
  Inum open_fs_ = kInvalidInum;
  DumpInodeAttrs open_attrs_;
  bool open_valid_ = false;

  // Crash-resumable recovery state.
  bool killed_ = false;
  uint64_t entries_applied_ = 0;
  uint32_t applied_since_cp_ = 0;
  bool plan_ready_ = false;
  std::vector<StreamRange> plan_;  // file-section extents to replay
  size_t plan_idx_ = 0;
  uint64_t run_start_ = 0;  // begin of the current contiguous consumed run
  std::vector<StreamRange> consumed_;
};

Result<DumpRecord> RestoreRun::NextRecord() {
  bool corrupt_seen = false;
  while (pos_ + kDumpRecordSize <= stream_.size()) {
    Result<DumpRecord> rec =
        DumpRecord::Parse(stream_.subspan(pos_, kDumpRecordSize));
    if (rec.ok()) {
      if (corrupt_seen) {
        out_.stats.corrupt_records_skipped++;
      }
      pos_ += kDumpRecordSize;
      return rec;
    }
    // Resynchronize at the next tape block — "a minor tape corruption will
    // usually affect only that single file".
    corrupt_seen = true;
    pos_ += kDumpRecordSize;
  }
  if (corrupt_seen) {
    out_.stats.corrupt_records_skipped++;
  }
  return NotFound("end of stream");
}

Status RestoreRun::ReadMaps() {
  for (const DumpRecordType expected :
       {DumpRecordType::kUsedMap, DumpRecordType::kDumpedMap}) {
    BKUP_ASSIGN_OR_RETURN(DumpRecord rec, NextRecord());
    if (rec.type != expected) {
      return Corruption("expected inode map record");
    }
    if (pos_ + rec.map_bytes > stream_.size()) {
      return Corruption("inode map truncated");
    }
    Bitmap map = Bitmap::Deserialize(stream_.subspan(pos_, rec.map_bytes),
                                     rec.map_inode_count);
    pos_ += rec.map_bytes;
    if (expected == DumpRecordType::kUsedMap) {
      used_ = std::move(map);
    } else {
      dumped_ = std::move(map);
    }
  }
  IoEvent& event = Event(JobPhase::kCreateFiles);
  event.cpu.push_back({CpuCost::kHeaderFormat, 2});
  return Status::Ok();
}

Status RestoreRun::HandleDirectory(const DumpRecord& rec) {
  const uint64_t padded =
      static_cast<uint64_t>(rec.present_count) * kDumpRecordSize;
  if (pos_ + padded > stream_.size() || rec.payload_bytes > padded) {
    return Corruption("directory payload truncated");
  }
  const auto payload = stream_.subspan(pos_, rec.payload_bytes);
  pos_ += padded;
  if (Crc32c(payload) != rec.data_crc) {
    out_.stats.corrupt_records_skipped++;
    return Status::Ok();  // this directory is lost; restore continues
  }
  BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                        DecodeDumpDirectory(payload));
  IoEvent& event = Event(JobPhase::kCreateFiles);
  event.cpu.push_back({CpuCost::kDirEntry, entries.size()});
  catalog_.AddDirectory(rec.inum, rec.attrs, std::move(entries));
  return Status::Ok();
}

Status RestoreRun::ComputeSelection() {
  restore_all_ = opt_.select.empty();
  if (restore_all_) {
    return Status::Ok();
  }
  for (const std::string& sel : opt_.select) {
    BKUP_ASSIGN_OR_RETURN(Inum inum, catalog_.Namei(sel));
    for (Inum d : catalog_.Descendants(inum)) {
      wanted_.insert(d);
    }
    // Ancestor directories are needed to hold the restored files.
    std::string prefix = "/";
    BKUP_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(sel));
    wanted_.insert(catalog_.root());
    Inum cur = catalog_.root();
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
      BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                            catalog_.DirEntries(cur));
      const auto it = std::find_if(
          entries.begin(), entries.end(),
          [&](const DirEntry& e) { return e.name == parts[i]; });
      if (it == entries.end()) {
        return NotFound("selection ancestor missing from catalog");
      }
      cur = it->inum;
      wanted_.insert(cur);
    }
    (void)prefix;
  }
  return Status::Ok();
}

Status RestoreRun::ApplyMoves() {
  if (!opt_.apply_moves_and_deletes || opt_.symtable == nullptr) {
    return Status::Ok();
  }
  RestoreSymtable* sym = opt_.symtable;
  Status failure = Status::Ok();
  catalog_.ForEachDirTopDown([&](Inum dir, const std::string& dir_path) {
    if (!failure.ok()) {
      return;
    }
    auto entries = catalog_.DirEntries(dir);
    if (!entries.ok()) {
      return;
    }
    for (const DirEntry& e : *entries) {
      if (!sym->Has(e.inum)) {
        continue;
      }
      const std::string rel =
          dir_path == "/" ? "/" + e.name : dir_path + "/" + e.name;
      const std::string new_path = JoinTarget(opt_.target_dir, rel);
      const std::string old_path = sym->PathOf(e.inum).value();
      if (old_path == new_path) {
        continue;
      }
      if (!fs_->LookupPath(old_path).ok() || fs_->LookupPath(new_path).ok()) {
        continue;
      }
      if (e.type == InodeType::kDirectory) {
        Status st = fs_->Rename(old_path, new_path);
        if (!st.ok()) {
          failure = st;
          return;
        }
        sym->RenamePrefix(old_path + "/", new_path + "/");
        sym->Set(e.inum, new_path);
        out_.stats.dirs_renamed++;
      } else {
        Status st = fs_->Link(old_path, new_path);
        if (!st.ok()) {
          failure = st;
          return;
        }
        sym->Set(e.inum, new_path);
      }
      IoEvent& event = Event(JobPhase::kCreateFiles);
      event.cpu.push_back({CpuCost::kRestoreCreate, 1});
      event.nvram_bytes += 64;
    }
  });
  return failure;
}

Status RestoreRun::CreateDirectories() {
  Status failure = Status::Ok();
  catalog_.ForEachDirTopDown([&](Inum dir, const std::string& dir_path) {
    if (!failure.ok()) {
      return;
    }
    if (!restore_all_ && wanted_.count(dir) == 0) {
      return;
    }
    auto attrs = catalog_.DirAttrs(dir);
    if (!attrs.ok()) {
      return;
    }
    const std::string fs_path = JoinTarget(opt_.target_dir, dir_path);
    IoEvent& event = Event(JobPhase::kCreateFiles);
    event.cpu.push_back({CpuCost::kRestoreCreate, 1});
    if (opt_.mode == LogicalRestoreOptions::Mode::kPortable) {
      event.cpu.push_back({CpuCost::kPathLookup, PathDepth(fs_path)});
    }

    Result<Inum> existing = fs_->LookupPath(fs_path);
    Inum fs_inum;
    if (existing.ok()) {
      fs_inum = *existing;
    } else {
      // Kernel mode sets the real permissions at creation; portable mode
      // creates writable and fixes permissions in the final pass.
      const uint16_t mode =
          opt_.mode == LogicalRestoreOptions::Mode::kKernel ? attrs->mode
                                                            : 0700;
      Result<Inum> created = fs_->Mkdir(fs_path, mode);
      if (!created.ok()) {
        failure = created.status();
        return;
      }
      fs_inum = *created;
      out_.stats.dirs_created++;
      event.nvram_bytes += 64;
      event.blocks_written += 1;
    }
    inum_map_[dir] = fs_inum;
    fs_path_of_[dir] = fs_path;
    if (opt_.symtable != nullptr) {
      opt_.symtable->Set(dir, fs_path);
    }
    dir_fixups_.emplace_back(fs_path, *attrs);
  });
  return failure;
}

Status RestoreRun::ApplyDeletes() {
  if (!opt_.apply_moves_and_deletes) {
    return Status::Ok();
  }
  Status failure = Status::Ok();
  catalog_.ForEachDirTopDown([&](Inum dir, const std::string& dir_path) {
    if (!failure.ok()) {
      return;
    }
    auto entries = catalog_.DirEntries(dir);
    if (!entries.ok()) {
      return;
    }
    const std::string fs_path = JoinTarget(opt_.target_dir, dir_path);
    Result<Inum> fs_dir = fs_->LookupPath(fs_path);
    if (!fs_dir.ok()) {
      return;
    }
    auto fs_entries = fs_->ReadDir(*fs_dir);
    if (!fs_entries.ok()) {
      return;
    }
    std::set<std::string> keep;
    for (const DirEntry& e : *entries) {
      keep.insert(e.name);
    }
    for (const DirEntry& fe : *fs_entries) {
      if (keep.count(fe.name) != 0) {
        continue;
      }
      const std::string victim = fs_path == "/" ? "/" + fe.name
                                                : fs_path + "/" + fe.name;
      Status st = RecursiveDelete(fs_, victim, &out_.stats.files_deleted);
      if (!st.ok()) {
        failure = st;
        return;
      }
      IoEvent& event = Event(JobPhase::kCreateFiles);
      event.cpu.push_back({CpuCost::kRestoreCreate, 1});
      event.nvram_bytes += 64;
    }
  });
  if (!failure.ok()) {
    return failure;
  }
  // Clean the symtable of anything the dump says no longer exists.
  if (opt_.symtable != nullptr && used_.size() > 0) {
    opt_.symtable->DropMissing(used_);
  }
  return Status::Ok();
}

Status RestoreRun::FinishDirectoryStage() {
  if (dirs_done_) {
    return Status::Ok();
  }
  dirs_done_ = true;
  BKUP_RETURN_IF_ERROR(catalog_.Finalize());
  BKUP_RETURN_IF_ERROR(ComputeSelection());
  BKUP_RETURN_IF_ERROR(ApplyMoves());
  BKUP_RETURN_IF_ERROR(CreateDirectories());
  return ApplyDeletes();
}

Status RestoreRun::FinalizeOpenFile() {
  if (!open_valid_) {
    return Status::Ok();
  }
  open_valid_ = false;
  BKUP_RETURN_IF_ERROR(fs_->Truncate(open_fs_, open_attrs_.size));
  SetAttrRequest req;
  req.mode = open_attrs_.mode;
  req.uid = open_attrs_.uid;
  req.gid = open_attrs_.gid;
  req.mtime = open_attrs_.mtime;
  req.atime = open_attrs_.atime;
  return fs_->SetAttr(open_fs_, req);
}

Status RestoreRun::HandleFileRecord(const DumpRecord& rec) {
  BKUP_RETURN_IF_ERROR(FinishDirectoryStage());

  const uint64_t data_bytes =
      static_cast<uint64_t>(rec.present_count) * kBlockSize;
  if (pos_ + data_bytes > stream_.size()) {
    // Ran off a truncated tape mid-file: salvage everything restored so
    // far and stop consuming records.
    pos_ = stream_.size();
    out_.stats.corrupt_records_skipped++;
    out_.stats.files_lost_to_corruption++;
    stream_exhausted_ = true;
    return Status::Ok();
  }
  const auto data = stream_.subspan(pos_, data_bytes);
  pos_ += data_bytes;

  if (rec.type == DumpRecordType::kInode) {
    BKUP_RETURN_IF_ERROR(FinalizeOpenFile());
    open_dumped_ = rec.inum;
    open_attrs_ = rec.attrs;

    const bool wanted = restore_all_ || wanted_.count(rec.inum) != 0;
    if (!wanted) {
      return Status::Ok();  // open_valid_ stays false; kAddr data skipped
    }
    std::vector<std::string> rel_paths = catalog_.PathsOf(rec.inum);
    if (!restore_all_) {
      // Keep only the selected link names.
      std::vector<std::string> filtered;
      for (const std::string& rel : rel_paths) {
        // A path is selected if some selected inum is one of its ancestors;
        // the wanted_ set already captures that via Descendants, so keep
        // paths whose parent dir is wanted.
        filtered.push_back(rel);
      }
      rel_paths = std::move(filtered);
    }
    if (rel_paths.empty()) {
      // Unreferenced inode (its directory record was lost to corruption).
      out_.stats.files_lost_to_corruption++;
      return Status::Ok();
    }

    if (Crc32c(data) != rec.data_crc) {
      out_.stats.corrupt_records_skipped++;
      out_.stats.files_lost_to_corruption++;
      return Status::Ok();
    }

    const std::string fs_path = JoinTarget(opt_.target_dir, rel_paths[0]);
    IoEvent& event = Event(JobPhase::kCreateFiles);
    event.cpu.push_back({CpuCost::kRestoreCreate, 1});
    if (opt_.mode == LogicalRestoreOptions::Mode::kPortable) {
      event.cpu.push_back({CpuCost::kPathLookup, PathDepth(fs_path)});
    }

    if (fs_->LookupPath(fs_path).ok()) {
      uint32_t deleted = 0;
      BKUP_RETURN_IF_ERROR(RecursiveDelete(fs_, fs_path, &deleted));
    }
    // A symlink whose target was too long for the header arrives with an
    // empty target string; its data blocks (following) carry the content.
    Result<Inum> created =
        rec.attrs.type == InodeType::kSymlink
            ? fs_->SymlinkAt(rec.symlink_target, fs_path)
            : fs_->Create(fs_path, rec.attrs.mode);
    BKUP_RETURN_IF_ERROR(created.status());
    open_fs_ = *created;
    open_valid_ = true;
    event.nvram_bytes += 64;
    if (rec.attrs.type == InodeType::kSymlink) {
      out_.stats.symlinks_restored++;
    } else {
      out_.stats.files_restored++;
    }
    inum_map_[rec.inum] = open_fs_;
    fs_path_of_[rec.inum] = fs_path;
    if (opt_.symtable != nullptr) {
      opt_.symtable->Set(rec.inum, fs_path);
    }
    // Additional hard links.
    for (size_t i = 1; i < rel_paths.size(); ++i) {
      const std::string link_path =
          JoinTarget(opt_.target_dir, rel_paths[i]);
      if (fs_->LookupPath(link_path).ok()) {
        uint32_t deleted = 0;
        BKUP_RETURN_IF_ERROR(RecursiveDelete(fs_, link_path, &deleted));
      }
      BKUP_RETURN_IF_ERROR(fs_->Link(fs_path, link_path));
      out_.stats.hard_links_restored++;
      event.nvram_bytes += 64;
    }
  } else {  // kAddr continuation
    if (!open_valid_ || rec.inum != open_dumped_) {
      return Status::Ok();  // continuation of a skipped or corrupt file
    }
    if (Crc32c(data) != rec.data_crc) {
      out_.stats.corrupt_records_skipped++;
      out_.stats.files_lost_to_corruption++;
      open_valid_ = false;
      return Status::Ok();
    }
  }

  if (!open_valid_) {
    return Status::Ok();
  }

  // Lay the present blocks into the file at their hole-aware offsets.
  IoEvent& event = Event(JobPhase::kFillData);
  uint64_t consumed = 0;
  for (uint32_t i = 0; i < rec.map_count; ++i) {
    if (!rec.BlockPresent(i)) {
      continue;
    }
    const uint64_t offset = (rec.first_fbn + i) * kBlockSize;
    BKUP_RETURN_IF_ERROR(
        fs_->Write(open_fs_, offset, data.subspan(consumed, kBlockSize)));
    consumed += kBlockSize;
  }
  event.stream_end = pos_;
  event.blocks_written += rec.present_count;
  event.nvram_bytes += consumed + 32ull * rec.present_count;
  event.cpu.push_back({CpuCost::kRestoreLogicalBlock, rec.present_count});
  out_.stats.data_blocks += rec.present_count;
  out_.stats.bytes_restored += consumed;
  return Status::Ok();
}

Status RestoreRun::FinalPass() {
  BKUP_RETURN_IF_ERROR(FinalizeOpenFile());
  BKUP_RETURN_IF_ERROR(FinishDirectoryStage());  // dump with no files at all
  // "After the directories and files have been written to disk, the system
  // begins to restore the directories' permissions and times."
  IoEvent& event = Event(JobPhase::kCreateFiles);
  for (const auto& [path, attrs] : dir_fixups_) {
    Result<Inum> inum = fs_->LookupPath(path);
    if (!inum.ok()) {
      continue;
    }
    SetAttrRequest req;
    if (opt_.mode == LogicalRestoreOptions::Mode::kPortable) {
      req.mode = attrs.mode;
      req.uid = attrs.uid;
      req.gid = attrs.gid;
      event.cpu.push_back({CpuCost::kPathLookup, PathDepth(path)});
    }
    req.mtime = attrs.mtime;
    req.atime = attrs.atime;
    BKUP_RETURN_IF_ERROR(fs_->SetAttr(*inum, req));
    event.cpu.push_back({CpuCost::kRestoreCreate, 1});
    event.nvram_bytes += 64;
  }
  BKUP_RETURN_IF_ERROR(fs_->ConsistencyPoint().status());
  return Status::Ok();
}

bool RestoreRun::Applied(RestorePhase phase) {
  ++entries_applied_;
  if (opt_.checkpoint_every > 0 &&
      ++applied_since_cp_ >= opt_.checkpoint_every) {
    applied_since_cp_ = 0;
    if (fs_->ConsistencyPoint().status().ok()) {
      out_.stats.checkpoints++;
    }
  }
  if (!killed_ && opt_.kill != nullptr &&
      opt_.kill->ShouldKill(phase, entries_applied_, pos_)) {
    killed_ = true;
  }
  return killed_;
}

void RestoreRun::Jump(uint64_t to) {
  if (to <= pos_) {
    return;
  }
  out_.stats.bytes_skipped += to - pos_;
  if (pos_ > run_start_) {
    consumed_.push_back({run_start_, pos_});
  }
  pos_ = to;
  run_start_ = to;
}

Result<LogicalRestoreOutput> RestoreRun::Finish() {
  if (pos_ > run_start_) {
    consumed_.push_back({run_start_, pos_});
  }
  CoalesceRanges(&consumed_);
  out_.consumed_ranges = consumed_;
  out_.stats.bytes_replayed = 0;
  for (const StreamRange& r : out_.consumed_ranges) {
    out_.stats.bytes_replayed += r.size();
  }
  out_.stopped_at = pos_;
  out_.interrupted = killed_;
  return std::move(out_);
}

Result<bool> RestoreRun::EntryComplete(const TapeCatalog::Entry& entry) {
  if (entry.offset + kDumpRecordSize > stream_.size()) {
    return false;
  }
  Result<DumpRecord> rec =
      DumpRecord::Parse(stream_.subspan(entry.offset, kDumpRecordSize));
  if (!rec.ok() || rec->type != DumpRecordType::kInode) {
    return false;
  }
  const std::vector<std::string> rel_paths = catalog_.PathsOf(rec->inum);
  if (rel_paths.empty()) {
    return false;
  }
  // Complete means: every link name exists on the target, and the primary
  // path's attributes match the dumped ones. The finalize step (truncate to
  // size + set mode/uid/gid/times) is the last thing the engine does per
  // file, so a file that passes this check either ran the full create/fill/
  // finalize sequence or is byte-identical to one that did — replaying it
  // again would be a no-op either way.
  Inum fs_inum = kInvalidInum;
  for (size_t i = 0; i < rel_paths.size(); ++i) {
    Result<Inum> found =
        fs_->LookupPath(JoinTarget(opt_.target_dir, rel_paths[i]));
    if (!found.ok()) {
      return false;
    }
    if (i == 0) {
      fs_inum = *found;
    }
  }
  Result<InodeData> attrs = fs_->GetAttr(fs_inum);
  if (!attrs.ok()) {
    return false;
  }
  const DumpInodeAttrs& want = rec->attrs;
  if (attrs->type != want.type || attrs->size != want.size ||
      attrs->mtime != want.mtime || attrs->uid != want.uid ||
      attrs->gid != want.gid) {
    return false;
  }
  // The file survives as-is; register it so a later incremental pass and
  // the symtable still see it.
  const std::string fs_path = JoinTarget(opt_.target_dir, rel_paths[0]);
  inum_map_[rec->inum] = fs_inum;
  fs_path_of_[rec->inum] = fs_path;
  if (opt_.symtable != nullptr) {
    opt_.symtable->Set(rec->inum, fs_path);
  }
  return true;
}

Status RestoreRun::BuildReplayPlan() {
  const std::vector<TapeCatalog::Entry>& entries = opt_.catalog->entries();
  for (size_t i = opt_.catalog->first_file_entry(); i < entries.size();) {
    if (entries[i].type != DumpRecordType::kInode) {
      ++i;  // an orphan kAddr is useless without its kInode
      continue;
    }
    // The file's extent: its kInode record plus following continuations.
    size_t j = i + 1;
    uint64_t end = entries[i].offset + entries[i].bytes;
    while (j < entries.size() && entries[j].type == DumpRecordType::kAddr &&
           entries[j].inum == entries[i].inum) {
      end = entries[j].offset + entries[j].bytes;
      ++j;
    }
    bool replay = restore_all_ || wanted_.count(entries[i].inum) != 0;
    if (replay && opt_.resume) {
      BKUP_ASSIGN_OR_RETURN(bool complete, EntryComplete(entries[i]));
      if (complete) {
        replay = false;
        out_.stats.files_already_complete++;
        out_.stats.entries_skipped += static_cast<uint32_t>(j - i);
      }
    }
    if (replay) {
      plan_.push_back({entries[i].offset, end});
    }
    i = j;
  }
  CoalesceRanges(&plan_);
  return Status::Ok();
}

Status RestoreRun::MaybePlanAndSkip(bool* stop) {
  *stop = false;
  if (opt_.catalog == nullptr || (!opt_.resume && opt_.select.empty())) {
    return Status::Ok();  // classic full scan
  }
  if (!plan_ready_) {
    if (pos_ < opt_.catalog->directory_end()) {
      return Status::Ok();  // still inside the prologue
    }
    // The cursor reached the file section: the directory stage is fully
    // read, so the selection and the resume diff can be computed now.
    BKUP_RETURN_IF_ERROR(FinishDirectoryStage());
    BKUP_RETURN_IF_ERROR(BuildReplayPlan());
    plan_ready_ = true;
  }
  while (plan_idx_ < plan_.size() && pos_ >= plan_[plan_idx_].end) {
    ++plan_idx_;
  }
  if (plan_idx_ >= plan_.size()) {
    *stop = true;  // nothing left to replay; skip straight to the final pass
    return Status::Ok();
  }
  if (pos_ < plan_[plan_idx_].begin) {
    Jump(plan_[plan_idx_].begin);
  }
  return Status::Ok();
}

Result<LogicalRestoreOutput> RestoreRun::Run() {
  if (opt_.apply_moves_and_deletes && opt_.symtable == nullptr) {
    return InvalidArgument(
        "incremental reconciliation requires a restore symtable");
  }
  // Validate the restore target before touching the stream.
  BKUP_ASSIGN_OR_RETURN(Inum target, fs_->LookupPath(opt_.target_dir));
  BKUP_ASSIGN_OR_RETURN(InodeData target_attrs, fs_->GetAttr(target));
  if (target_attrs.type != InodeType::kDirectory) {
    return NotADirectory("restore target is not a directory");
  }

  BKUP_ASSIGN_OR_RETURN(DumpRecord header, NextRecord());
  if (header.type != DumpRecordType::kTapeHeader) {
    return Corruption("stream does not start with a tape header");
  }
  out_.level = header.level;
  out_.dump_time = header.dump_time;
  BKUP_RETURN_IF_ERROR(ReadMaps());
  if (Applied(RestorePhase::kMaps)) {
    return Finish();
  }

  while (!killed_) {
    bool plan_done = false;
    BKUP_RETURN_IF_ERROR(MaybePlanAndSkip(&plan_done));
    if (plan_done) {
      break;
    }
    Result<DumpRecord> rec = NextRecord();
    if (!rec.ok()) {
      break;  // ran off the end: treat like kEnd but count it
    }
    if (rec->type == DumpRecordType::kEnd || stream_exhausted_) {
      break;
    }
    switch (rec->type) {
      case DumpRecordType::kDirectory:
        BKUP_RETURN_IF_ERROR(HandleDirectory(*rec));
        Applied(RestorePhase::kDirectories);
        break;
      case DumpRecordType::kInode:
      case DumpRecordType::kAddr:
        BKUP_RETURN_IF_ERROR(HandleFileRecord(*rec));
        Applied(RestorePhase::kFiles);
        break;
      default:
        // Unexpected record type mid-stream; skip it.
        out_.stats.corrupt_records_skipped++;
        break;
    }
  }
  if (killed_ || Applied(RestorePhase::kFinal)) {
    return Finish();  // died before the final pass: no closing CP
  }
  BKUP_RETURN_IF_ERROR(FinalPass());
  return Finish();
}

}  // namespace

Result<LogicalRestoreOutput> RunLogicalRestore(
    Filesystem* fs, std::span<const uint8_t> stream,
    const LogicalRestoreOptions& options) {
  RestoreRun run(fs, stream, options);
  Result<LogicalRestoreOutput> out = run.Run();
  if (out.ok()) {
    MetricsRegistry& metrics = MetricsRegistry::Default();
    metrics.GetCounter("restore.logical.runs")->Increment();
    metrics.GetCounter("restore.logical.files")
        ->Increment(out->stats.files_restored);
    metrics.GetCounter("restore.logical.bytes")
        ->Increment(out->stats.bytes_restored);
    metrics.GetCounter("restore.logical.corrupt_records_skipped")
        ->Increment(out->stats.corrupt_records_skipped);
    metrics.GetCounter("restore.checkpoints")
        ->Increment(out->stats.checkpoints);
    if (options.resume) {
      metrics.GetCounter("restore.resume.runs")->Increment();
      metrics.GetCounter("restore.resume.bytes_replayed")
          ->Increment(out->stats.bytes_replayed);
      metrics.GetCounter("restore.resume.bytes_skipped")
          ->Increment(out->stats.bytes_skipped);
      metrics.GetCounter("restore.resume.entries_skipped")
          ->Increment(out->stats.entries_skipped);
    }
    if (out->interrupted) {
      metrics.GetCounter("restore.interrupted")->Increment();
    }
  }
  return out;
}

}  // namespace bkup

#include "src/dump/format.h"

#include "src/util/checksum.h"
#include "src/util/serdes.h"

namespace bkup {

Result<std::vector<uint8_t>> DumpRecord::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kDumpRecordSize);
  ByteWriter w(&out);
  w.PutU32(kDumpMagic);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU32(inum);
  switch (type) {
    case DumpRecordType::kTapeHeader:
      w.PutU32(kDumpFormatVersion);
      w.PutU32(level);
      w.PutI64(dump_time);
      w.PutI64(base_time);
      w.PutU32(max_inodes);
      w.PutString(volume_name);
      w.PutString(snapshot_name);
      w.PutString(subtree);
      break;
    case DumpRecordType::kUsedMap:
    case DumpRecordType::kDumpedMap:
      w.PutU32(map_bytes);
      w.PutU32(map_inode_count);
      break;
    case DumpRecordType::kDirectory:
    case DumpRecordType::kInode:
    case DumpRecordType::kAddr:
      w.PutU8(static_cast<uint8_t>(attrs.type));
      w.PutU16(attrs.mode);
      w.PutU16(attrs.nlink);
      w.PutU32(attrs.uid);
      w.PutU32(attrs.gid);
      w.PutU64(attrs.size);
      w.PutI64(attrs.mtime);
      w.PutI64(attrs.atime);
      w.PutI64(attrs.ctime);
      w.PutU32(attrs.generation);
      w.PutString(symlink_target);
      w.PutU64(total_blocks);
      w.PutU64(first_fbn);
      w.PutU32(map_count);
      w.PutU32(present_count);
      w.PutU32(data_crc);
      w.PutU64(payload_bytes);
      if (map_count > kMapBitsPerRecord) {
        return InvalidArgument("record block map too large");
      }
      if (block_map.size() != (map_count + 7) / 8) {
        return InvalidArgument("block map size mismatch");
      }
      w.PutBytes(block_map);
      break;
    case DumpRecordType::kEnd:
      break;
  }
  if (out.size() + 4 > kDumpRecordSize) {
    return InvalidArgument("dump record overflows 1 KB header");
  }
  out.resize(kDumpRecordSize - 4, 0);
  const uint32_t crc = Crc32c(out);
  ByteWriter tail(&out);
  tail.PutU32(crc);
  return out;
}

Result<DumpRecord> DumpRecord::Parse(std::span<const uint8_t> bytes) {
  if (bytes.size() < kDumpRecordSize) {
    return Corruption("dump record truncated");
  }
  bytes = bytes.first(kDumpRecordSize);
  const uint32_t stored = static_cast<uint32_t>(bytes[kDumpRecordSize - 4]) |
                          static_cast<uint32_t>(bytes[kDumpRecordSize - 3]) << 8 |
                          static_cast<uint32_t>(bytes[kDumpRecordSize - 2]) << 16 |
                          static_cast<uint32_t>(bytes[kDumpRecordSize - 1]) << 24;
  if (Crc32c(bytes.first(kDumpRecordSize - 4)) != stored) {
    return Corruption("dump record checksum mismatch");
  }
  ByteReader r(bytes);
  DumpRecord rec;
  BKUP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kDumpMagic) {
    return Corruption("dump record bad magic");
  }
  BKUP_ASSIGN_OR_RETURN(uint8_t type_raw, r.ReadU8());
  if (type_raw < 1 || type_raw > static_cast<uint8_t>(DumpRecordType::kEnd)) {
    return Corruption("dump record bad type");
  }
  rec.type = static_cast<DumpRecordType>(type_raw);
  BKUP_ASSIGN_OR_RETURN(rec.inum, r.ReadU32());
  switch (rec.type) {
    case DumpRecordType::kTapeHeader: {
      BKUP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
      if (version != kDumpFormatVersion) {
        return Unsupported("dump format version mismatch");
      }
      BKUP_ASSIGN_OR_RETURN(rec.level, r.ReadU32());
      BKUP_ASSIGN_OR_RETURN(rec.dump_time, r.ReadI64());
      BKUP_ASSIGN_OR_RETURN(rec.base_time, r.ReadI64());
      BKUP_ASSIGN_OR_RETURN(rec.max_inodes, r.ReadU32());
      BKUP_ASSIGN_OR_RETURN(rec.volume_name, r.ReadString());
      BKUP_ASSIGN_OR_RETURN(rec.snapshot_name, r.ReadString());
      BKUP_ASSIGN_OR_RETURN(rec.subtree, r.ReadString());
      break;
    }
    case DumpRecordType::kUsedMap:
    case DumpRecordType::kDumpedMap: {
      BKUP_ASSIGN_OR_RETURN(rec.map_bytes, r.ReadU32());
      BKUP_ASSIGN_OR_RETURN(rec.map_inode_count, r.ReadU32());
      break;
    }
    case DumpRecordType::kDirectory:
    case DumpRecordType::kInode:
    case DumpRecordType::kAddr: {
      BKUP_ASSIGN_OR_RETURN(uint8_t itype, r.ReadU8());
      if (itype > static_cast<uint8_t>(InodeType::kSymlink)) {
        return Corruption("dump record bad inode type");
      }
      rec.attrs.type = static_cast<InodeType>(itype);
      BKUP_ASSIGN_OR_RETURN(rec.attrs.mode, r.ReadU16());
      BKUP_ASSIGN_OR_RETURN(rec.attrs.nlink, r.ReadU16());
      BKUP_ASSIGN_OR_RETURN(rec.attrs.uid, r.ReadU32());
      BKUP_ASSIGN_OR_RETURN(rec.attrs.gid, r.ReadU32());
      BKUP_ASSIGN_OR_RETURN(rec.attrs.size, r.ReadU64());
      BKUP_ASSIGN_OR_RETURN(rec.attrs.mtime, r.ReadI64());
      BKUP_ASSIGN_OR_RETURN(rec.attrs.atime, r.ReadI64());
      BKUP_ASSIGN_OR_RETURN(rec.attrs.ctime, r.ReadI64());
      BKUP_ASSIGN_OR_RETURN(rec.attrs.generation, r.ReadU32());
      BKUP_ASSIGN_OR_RETURN(rec.symlink_target, r.ReadString());
      BKUP_ASSIGN_OR_RETURN(rec.total_blocks, r.ReadU64());
      BKUP_ASSIGN_OR_RETURN(rec.first_fbn, r.ReadU64());
      BKUP_ASSIGN_OR_RETURN(rec.map_count, r.ReadU32());
      BKUP_ASSIGN_OR_RETURN(rec.present_count, r.ReadU32());
      BKUP_ASSIGN_OR_RETURN(rec.data_crc, r.ReadU32());
      BKUP_ASSIGN_OR_RETURN(rec.payload_bytes, r.ReadU64());
      if (rec.map_count > kMapBitsPerRecord) {
        return Corruption("dump record map too large");
      }
      BKUP_ASSIGN_OR_RETURN(rec.block_map, r.ReadBytes((rec.map_count + 7) / 8));
      break;
    }
    case DumpRecordType::kEnd:
      break;
  }
  return rec;
}

uint64_t InodeMapStreamBytes(uint32_t num_inodes) {
  uint64_t bytes = (num_inodes + 7) / 8;
  return (bytes + 7) / 8 * 8;
}

std::vector<uint8_t> EncodeDumpDirectory(const std::vector<DirEntry>& entries) {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const DirEntry& e : entries) {
    w.PutU32(e.inum);
    w.PutU8(static_cast<uint8_t>(e.type));
    w.PutString(e.name);
  }
  return out;
}

Result<std::vector<DirEntry>> DecodeDumpDirectory(
    std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  BKUP_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  std::vector<DirEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DirEntry e;
    BKUP_ASSIGN_OR_RETURN(e.inum, r.ReadU32());
    BKUP_ASSIGN_OR_RETURN(uint8_t type_raw, r.ReadU8());
    if (type_raw > static_cast<uint8_t>(InodeType::kSymlink)) {
      return Corruption("bad entry type in dumped directory");
    }
    e.type = static_cast<InodeType>(type_raw);
    BKUP_ASSIGN_OR_RETURN(e.name, r.ReadString());
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace bkup

// The restore catalog: the "desiccated file system" the paper describes.
//
// "Restore reads the directories from tape into one large file ... So, when
// a user asks for a file, it can execute its own namei ... without ever
// laying this directory structure on the file system."
//
// The catalog holds the dumped directories (attributes + entries) keyed by
// dumped inum, resolves dump-relative paths with its own namei, enumerates
// hard-link paths, and walks the tree top-down for directory creation.
#ifndef BKUP_DUMP_CATALOG_H_
#define BKUP_DUMP_CATALOG_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/dump/format.h"
#include "src/util/status.h"

namespace bkup {

class RestoreCatalog {
 public:
  void AddDirectory(Inum inum, const DumpInodeAttrs& attrs,
                    std::vector<DirEntry> entries);

  // Must be called after all directories are added; identifies the dump
  // root (the directory that is nobody's child) and builds parent links.
  Status Finalize();

  bool finalized() const { return finalized_; }
  Inum root() const { return root_; }
  size_t num_directories() const { return dirs_.size(); }

  bool HasDirectory(Inum inum) const { return dirs_.count(inum) != 0; }
  Result<DumpInodeAttrs> DirAttrs(Inum inum) const;
  Result<std::vector<DirEntry>> DirEntries(Inum inum) const;

  // Catalog namei: resolves a dump-root-relative path ("/a/b/c"). "/" is the
  // dump root itself.
  Result<Inum> Namei(const std::string& path) const;

  // All dump-relative paths referring to `inum` (several for hard links),
  // in deterministic order. Empty if the inum appears in no dumped
  // directory.
  std::vector<std::string> PathsOf(Inum inum) const;

  // The set of inums reachable below `inum` (inclusive), for subtree
  // selection in partial restores. Non-directory inums yield {inum}.
  std::vector<Inum> Descendants(Inum inum) const;

  // Visits every catalog directory top-down (parents before children) with
  // its dump-relative path.
  void ForEachDirTopDown(
      const std::function<void(Inum, const std::string&)>& fn) const;

 private:
  struct DirInfo {
    DumpInodeAttrs attrs;
    std::vector<DirEntry> entries;
  };

  std::string PathOfDir(Inum inum) const;

  std::map<Inum, DirInfo> dirs_;
  // child inum -> list of (parent dir inum, name); files may have several.
  std::map<Inum, std::vector<std::pair<Inum, std::string>>> links_;
  Inum root_ = kInvalidInum;
  bool finalized_ = false;
};

}  // namespace bkup

#endif  // BKUP_DUMP_CATALOG_H_

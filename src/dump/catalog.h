// The restore catalog: the "desiccated file system" the paper describes.
//
// "Restore reads the directories from tape into one large file ... So, when
// a user asks for a file, it can execute its own namei ... without ever
// laying this directory structure on the file system."
//
// The catalog holds the dumped directories (attributes + entries) keyed by
// dumped inum, resolves dump-relative paths with its own namei, enumerates
// hard-link paths, and walks the tree top-down for directory creation.
// The durable twin, `TapeCatalog`, extends that record into the recovery
// authority: every stream record's byte offset and extent, serialized as an
// append-only journal of entry frames sealed by CRC checkpoints. A restore
// killed mid-stream diffs the catalog against the partially-restored tree
// and replays only the missing suffix; a single-file restore turns a name
// into the exact byte ranges to pull off the media.
#ifndef BKUP_DUMP_CATALOG_H_
#define BKUP_DUMP_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/dump/format.h"
#include "src/util/status.h"

namespace bkup {

class RestoreCatalog {
 public:
  void AddDirectory(Inum inum, const DumpInodeAttrs& attrs,
                    std::vector<DirEntry> entries);

  // Must be called after all directories are added; identifies the dump
  // root (the directory that is nobody's child) and builds parent links.
  Status Finalize();

  bool finalized() const { return finalized_; }
  Inum root() const { return root_; }
  size_t num_directories() const { return dirs_.size(); }

  bool HasDirectory(Inum inum) const { return dirs_.count(inum) != 0; }
  Result<DumpInodeAttrs> DirAttrs(Inum inum) const;
  Result<std::vector<DirEntry>> DirEntries(Inum inum) const;

  // Catalog namei: resolves a dump-root-relative path ("/a/b/c"). "/" is the
  // dump root itself.
  Result<Inum> Namei(const std::string& path) const;

  // All dump-relative paths referring to `inum` (several for hard links),
  // in deterministic order. Empty if the inum appears in no dumped
  // directory.
  std::vector<std::string> PathsOf(Inum inum) const;

  // The set of inums reachable below `inum` (inclusive), for subtree
  // selection in partial restores. Non-directory inums yield {inum}.
  std::vector<Inum> Descendants(Inum inum) const;

  // Visits every catalog directory top-down (parents before children) with
  // its dump-relative path.
  void ForEachDirTopDown(
      const std::function<void(Inum, const std::string&)>& fn) const;

 private:
  struct DirInfo {
    DumpInodeAttrs attrs;
    std::vector<DirEntry> entries;
  };

  std::string PathOfDir(Inum inum) const;

  std::map<Inum, DirInfo> dirs_;
  // child inum -> list of (parent dir inum, name); files may have several.
  std::map<Inum, std::vector<std::pair<Inum, std::string>>> links_;
  Inum root_ = kInvalidInum;
  bool finalized_ = false;
};

// A half-open byte range [begin, end) of a dump stream.
struct StreamRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
  bool operator==(const StreamRange&) const = default;
};

// Coalesces adjacent/overlapping ranges of a sorted range list in place.
void CoalesceRanges(std::vector<StreamRange>* ranges);

// Offset index of one dump stream: for every kDirectory/kInode/kAddr record,
// where its extent (header + payload) lies on the stream. Built by the dump
// engine as it emits records, persisted as a checkpointed journal, and used
// by restores to seek instead of scan.
class TapeCatalog {
 public:
  struct Entry {
    DumpRecordType type = DumpRecordType::kEnd;
    Inum inum = kInvalidInum;
    uint64_t offset = 0;  // stream offset of the 1 KB record header
    uint64_t bytes = 0;   // header + padded payload

    bool operator==(const Entry&) const = default;
  };

  // How a serialized image loaded: entries recovered, frames dropped past
  // the last valid checkpoint, and whether the tail was torn at all.
  struct LoadStats {
    uint64_t entries_loaded = 0;
    uint64_t entries_dropped = 0;
    uint64_t checkpoints_seen = 0;
    bool truncated = false;
  };

  void Add(const Entry& entry) { entries_.push_back(entry); }

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  // End of the stream extent the catalog covers (offset past the last
  // indexed record; the kEnd record and padding may follow).
  uint64_t stream_end() const;

  // Offset where the file section begins: the first kInode record, or
  // stream_end() for a dump with no files. The prologue [0, directory_end())
  // — tape header, inode maps, directory records — is what every restore
  // (full, resumed, or single-file) must consume.
  uint64_t directory_end() const;

  // Index of the first file-section entry, entries().size() if none.
  size_t first_file_entry() const;

  // The contiguous record extent of `inum`'s file data: its kInode record
  // and the kAddr continuations that follow it. Empty if the inum has no
  // file records (a directory, or not in this dump).
  std::vector<Entry> RecordsOf(Inum inum) const;

  // Byte ranges a restore of exactly `wanted` needs off the media: the
  // prologue plus each wanted inum's record extents, coalesced and in
  // ascending order. The heart of O(file) single-file restore.
  std::vector<StreamRange> RestoreRanges(std::span<const Inum> wanted) const;

  // Serializes the whole index as one journal image (entry frames with a
  // checkpoint frame every `checkpoint_every` entries and one final seal).
  std::vector<uint8_t> Serialize(uint32_t checkpoint_every = 64) const;

  // Tolerant loader: parses a journal image, truncating at the last valid
  // checkpoint on a torn tail or mid-entry truncation. Fails with
  // Corruption only when not even one checkpointed prefix is intact (bad
  // magic, bad version, or a bit flip inside the first sealed region).
  static Result<TapeCatalog> Load(std::span<const uint8_t> image,
                                  LoadStats* stats = nullptr);

  // Rebuilds the index by scanning a dump stream's records — the fallback
  // for media dumped before catalogs existed, and the oracle Load-ed
  // catalogs are tested against.
  static Result<TapeCatalog> FromStream(std::span<const uint8_t> stream);

 private:
  std::vector<Entry> entries_;
};

// Incremental journal writer: the dump engine appends one entry per emitted
// record; every `checkpoint_every` entries the image gains a checkpoint
// frame (CRC over the whole preceding image), so a torn tail costs at most
// one cadence of entries. Finish() seals the remainder.
class TapeCatalogWriter {
 public:
  explicit TapeCatalogWriter(uint32_t checkpoint_every = 64);

  void Add(const TapeCatalog::Entry& entry);
  // Seals unsealed entries with a final checkpoint frame.
  void Finish();

  const std::vector<uint8_t>& image() const { return image_; }
  std::vector<uint8_t> TakeImage() { return std::move(image_); }
  uint64_t checkpoints_written() const { return checkpoints_written_; }

 private:
  void Checkpoint();

  uint32_t checkpoint_every_;
  std::vector<uint8_t> image_;
  uint64_t entries_ = 0;
  uint64_t entries_sealed_ = 0;
  uint64_t stream_end_ = 0;
  uint64_t checkpoints_written_ = 0;
};

// Builds the in-memory directory catalog from a dump stream's prologue
// (tape header, inode maps, directory records) without touching any file
// system — the namei side of a catalog-driven single-file restore.
Result<RestoreCatalog> BuildRestoreCatalog(std::span<const uint8_t> stream);

}  // namespace bkup

#endif  // BKUP_DUMP_CATALOG_H_

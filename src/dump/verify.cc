#include "src/dump/verify.h"

#include <algorithm>
#include <cstdio>

#include "src/util/bitmap.h"
#include "src/util/checksum.h"

namespace bkup {

namespace {
constexpr size_t kMaxReportedMissing = 16;
}  // namespace

std::string DumpVerifyReport::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: level %u of '%s': %u dirs, %u files, %llu data blocks; "
                "%u/%u dumped inodes present; %u corrupt records, %u data "
                "CRC errors",
                readable ? "READABLE" : "UNRELIABLE", level,
                volume_name.c_str(), directories, files,
                static_cast<unsigned long long>(data_blocks), inodes_seen,
                inodes_expected, corrupt_records, data_crc_errors);
  return buf;
}

Result<DumpVerifyReport> VerifyDumpStream(std::span<const uint8_t> stream) {
  DumpVerifyReport report;
  uint64_t pos = 0;

  auto next_record = [&]() -> Result<DumpRecord> {
    bool corrupt_seen = false;
    while (pos + kDumpRecordSize <= stream.size()) {
      Result<DumpRecord> rec =
          DumpRecord::Parse(stream.subspan(pos, kDumpRecordSize));
      if (rec.ok()) {
        if (corrupt_seen) {
          report.corrupt_records++;
        }
        pos += kDumpRecordSize;
        return rec;
      }
      corrupt_seen = true;
      pos += kDumpRecordSize;
    }
    if (corrupt_seen) {
      report.corrupt_records++;
    }
    return NotFound("end of stream");
  };

  // Tape header.
  BKUP_ASSIGN_OR_RETURN(DumpRecord header, next_record());
  if (header.type != DumpRecordType::kTapeHeader) {
    return Corruption("stream does not start with a tape header");
  }
  report.level = header.level;
  report.dump_time = header.dump_time;
  report.volume_name = header.volume_name;

  // The two inode maps.
  Bitmap dumped_map;
  for (const DumpRecordType expected :
       {DumpRecordType::kUsedMap, DumpRecordType::kDumpedMap}) {
    BKUP_ASSIGN_OR_RETURN(DumpRecord rec, next_record());
    if (rec.type != expected) {
      return Corruption("missing inode map record");
    }
    if (pos + rec.map_bytes > stream.size()) {
      return Corruption("inode map truncated");
    }
    if (expected == DumpRecordType::kDumpedMap) {
      dumped_map = Bitmap::Deserialize(stream.subspan(pos, rec.map_bytes),
                                       rec.map_inode_count);
    }
    pos += rec.map_bytes;
  }
  report.inodes_expected = static_cast<uint32_t>(dumped_map.CountOnes());

  Bitmap seen(dumped_map.size());
  bool saw_file = false;
  bool saw_end = false;
  Inum last_dir = 0;
  Inum last_file = 0;

  while (true) {
    Result<DumpRecord> rec = next_record();
    if (!rec.ok()) {
      break;  // truncated tape: no end marker
    }
    if (rec->type == DumpRecordType::kEnd) {
      saw_end = true;
      break;
    }
    switch (rec->type) {
      case DumpRecordType::kDirectory: {
        const uint64_t padded =
            static_cast<uint64_t>(rec->present_count) * kDumpRecordSize;
        if (pos + padded > stream.size() || rec->payload_bytes > padded) {
          report.corrupt_records++;
          pos = stream.size();
          break;
        }
        if (Crc32c(stream.subspan(pos, rec->payload_bytes)) !=
            rec->data_crc) {
          report.data_crc_errors++;
        }
        pos += padded;
        // "All directories precede all files ... in ascending inode order."
        if (saw_file || rec->inum < last_dir) {
          report.out_of_order_records++;
        }
        last_dir = rec->inum;
        report.directories++;
        if (rec->inum < seen.size()) {
          seen.Set(rec->inum);
        }
        break;
      }
      case DumpRecordType::kInode:
      case DumpRecordType::kAddr: {
        const uint64_t data_bytes =
            static_cast<uint64_t>(rec->present_count) * kBlockSize;
        if (pos + data_bytes > stream.size()) {
          report.corrupt_records++;
          pos = stream.size();
          break;
        }
        if (Crc32c(stream.subspan(pos, data_bytes)) != rec->data_crc) {
          report.data_crc_errors++;
        }
        pos += data_bytes;
        report.data_blocks += rec->present_count;
        if (rec->type == DumpRecordType::kInode) {
          if (rec->inum < last_file) {
            report.out_of_order_records++;
          }
          last_file = rec->inum;
          saw_file = true;
          report.files++;
          if (rec->inum < seen.size()) {
            seen.Set(rec->inum);
          }
        }
        break;
      }
      default:
        report.corrupt_records++;
        break;
    }
  }

  // Which dumped inodes never showed up?
  dumped_map.ForEachSet([&](size_t inum) {
    if (!seen.Test(inum) &&
        report.missing_inodes.size() < kMaxReportedMissing) {
      report.missing_inodes.push_back(static_cast<Inum>(inum));
    }
  });
  report.inodes_seen = static_cast<uint32_t>(seen.CountOnes());

  report.readable = saw_end && report.corrupt_records == 0 &&
                    report.data_crc_errors == 0 &&
                    report.out_of_order_records == 0 &&
                    report.inodes_seen == report.inodes_expected;
  return report;
}

}  // namespace bkup

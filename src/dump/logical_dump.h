// The logical dump engine: WAFL-style BSD dump over a snapshot reader.
//
// The four phases of §3 of the paper:
//   Phase I   — tree walk marking used and to-be-dumped inodes,
//   Phase II  — mark the directories between the dump root and the files
//               selected in Phase I (restore needs them for name→inum maps),
//   Phase III — write directories, ascending inode order,
//   Phase IV  — write files, ascending inode order.
//
// The engine is functional: it produces the real byte stream plus an IoTrace
// the backup jobs replay for timing (see src/block/io_trace.h). Subtree
// dumps and exclusion filters — the paper's stated advantages of logical
// backup — are supported directly.
#ifndef BKUP_DUMP_LOGICAL_DUMP_H_
#define BKUP_DUMP_LOGICAL_DUMP_H_

#include <functional>
#include <string>
#include <vector>

#include "src/block/io_trace.h"
#include "src/dump/catalog.h"
#include "src/dump/format.h"
#include "src/fs/reader.h"
#include "src/util/status.h"

namespace bkup {

struct LogicalDumpOptions {
  int level = 0;
  // Dump inodes whose mtime or ctime is at/after this; 0 dumps everything.
  // Taken from the dumpdates base entry for incremental levels.
  int64_t base_time = 0;
  std::string subtree = "/";
  std::string volume_name = "vol";
  std::string snapshot_name;  // recorded in the tape header
  int64_t dump_time = 0;
  // Exclusion filter on leaf names ("logical backup schemes often take
  // advantage of filters"); return true to skip the entry (and, for a
  // directory, its whole subtree).
  std::function<bool(const std::string& name)> exclude;
  // Graceful degradation: drop files whose blocks cannot be read (e.g. a
  // double disk failure in one RAID group) from the dump instead of
  // aborting it, counting them in stats.files_skipped. The dumped-inode map
  // stays consistent with the stream, so verify and restore still pass.
  // This is a logical-dump-only luxury — image dump has no file boundaries
  // to skip at and must hard-fail on an unreadable block.
  bool skip_unreadable = false;
  // Durable catalog journal cadence: a checkpoint frame seals the entry
  // journal every this many records, bounding what a torn tail can lose.
  uint32_t catalog_checkpoint_every = 64;
};

struct LogicalDumpStats {
  uint32_t inodes_in_subtree = 0;  // usedinomap population
  uint32_t inodes_dumped = 0;      // dumpinomap population
  uint32_t dirs_dumped = 0;
  uint32_t files_dumped = 0;
  uint32_t files_skipped = 0;  // unreadable files dropped (skip_unreadable)
  uint64_t data_blocks = 0;    // 4 KB data blocks written to the stream
  uint64_t holes_skipped = 0;  // file blocks omitted as holes
  uint64_t stream_bytes = 0;
};

struct LogicalDumpOutput {
  std::vector<uint8_t> stream;
  IoTrace trace;
  LogicalDumpStats stats;
  // Offset index of every record on `stream`: the recovery authority for
  // resumed and single-file restores.
  TapeCatalog catalog;
  // The same index as a durable journal image (checkpointed incrementally
  // while the dump ran), ready to land next to the media.
  std::vector<uint8_t> catalog_image;
};

// Runs a dump of `reader` (normally a snapshot view). Fails with NotFound if
// the subtree does not exist.
Result<LogicalDumpOutput> RunLogicalDump(const FsReader& reader,
                                         const LogicalDumpOptions& options);

}  // namespace bkup

#endif  // BKUP_DUMP_LOGICAL_DUMP_H_

// The logical dump tape format, modeled on the BSD dump format the paper
// describes (§3):
//
//   * The stream is a sequence of records. Every record starts with a 1 KB
//     header ("each file and directory is prefixed with 1KB of header
//     meta-data") carrying a magic number and a CRC, followed by zero or
//     more 4 KB data blocks.
//   * The tape is prefixed with two inode bitmaps: the inodes in use in the
//     dumped subtree (usedinomap — this is what lets incrementals detect
//     deletions) and the inodes actually written to the media (dumpinomap).
//   * All directories precede all files; both are written in ascending
//     inode order, with inode #2 as the root of the dump.
//   * File headers carry the attributes and a presence map of the file's
//     blocks (the "map of holes"); large files continue in kAddr records,
//     like BSD's TS_ADDR.
//
// Adaptation: BSD's hole map is 1 KB-granular; ours is 4 KB-granular because
// the file system has 4 KB blocks with no fragments (documented in
// DESIGN.md). Headers are self-identifying (magic + CRC + per-record data
// CRC), so a restore can skip a corrupted region and resynchronize at the
// next valid header — the property behind the paper's claim that "a minor
// tape corruption will usually affect only that single file".
#ifndef BKUP_DUMP_FORMAT_H_
#define BKUP_DUMP_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fs/layout.h"
#include "src/util/bitmap.h"
#include "src/util/status.h"

namespace bkup {

inline constexpr uint32_t kDumpMagic = 0xD5B91999;  // dump stream, 1999
inline constexpr uint32_t kDumpFormatVersion = 1;
inline constexpr size_t kDumpRecordSize = 1024;  // the 1 KB header

// Block-presence bits carried by one inode/addr record. Limited so the
// header, attributes and a symlink target all fit in 1 KB.
inline constexpr uint32_t kMapBitsPerRecord = 4096;

enum class DumpRecordType : uint8_t {
  kTapeHeader = 1,  // start of stream (TS_TAPE)
  kUsedMap = 2,     // inodes in use at dump time (TS_BITS)
  kDumpedMap = 3,   // inodes present on this tape (TS_CLRI's complement)
  kDirectory = 4,   // a directory and its serialized entries
  kInode = 5,       // a file/symlink and its data (TS_INODE)
  kAddr = 6,        // continuation map for a large file (TS_ADDR)
  kEnd = 7,         // end of stream (TS_END)
};

// Attributes carried for every dumped inode; "file type, size, permissions,
// group, owner" as the paper lists, plus times, links and generation.
struct DumpInodeAttrs {
  InodeType type = InodeType::kFile;
  uint16_t mode = 0;
  uint16_t nlink = 1;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;
  int64_t mtime = 0;
  int64_t atime = 0;
  int64_t ctime = 0;
  uint32_t generation = 0;
};

// A parsed record header. Exactly kDumpRecordSize bytes on the stream.
struct DumpRecord {
  DumpRecordType type = DumpRecordType::kEnd;
  Inum inum = kInvalidInum;

  // kTapeHeader only.
  uint32_t level = 0;
  int64_t dump_time = 0;
  int64_t base_time = 0;  // previous dump's time (0 for level-0)
  uint32_t max_inodes = 0;
  std::string volume_name;
  std::string snapshot_name;
  std::string subtree;  // path of the dump root

  // kUsedMap / kDumpedMap: how many data bytes of bitmap follow.
  uint32_t map_bytes = 0;
  uint32_t map_inode_count = 0;

  // kDirectory / kInode / kAddr.
  DumpInodeAttrs attrs;        // kDirectory / kInode
  std::string symlink_target;  // kInode with type kSymlink
  uint64_t total_blocks = 0;   // file blocks overall (incl. holes)
  uint64_t first_fbn = 0;      // first block covered by this record's map
  uint32_t map_count = 0;      // presence bits in this record
  uint32_t present_count = 0;  // data blocks following this header
  uint32_t data_crc = 0;       // CRC-32C of the following data bytes
  // kDirectory: exact byte length of the encoded directory payload (which
  // is padded to a whole number of 1 KB tape blocks on the stream).
  uint64_t payload_bytes = 0;
  std::vector<uint8_t> block_map;  // ceil(map_count/8) presence bytes

  // Serializes to exactly kDumpRecordSize bytes (magic + payload + CRC).
  Result<std::vector<uint8_t>> Serialize() const;

  // Parses a kDumpRecordSize byte region; Corruption on bad magic/CRC.
  static Result<DumpRecord> Parse(std::span<const uint8_t> bytes);

  bool BlockPresent(uint32_t index) const {
    return (block_map[index / 8] >> (index % 8)) & 1;
  }
};

// Data bytes following a map record: ceil(bits/8), padded to 8-byte align.
uint64_t InodeMapStreamBytes(uint32_t num_inodes);

// Serialized directory payload for kDirectory records — the dump's own
// portable encoding, "a simple, known format of the file name followed by
// the inode number".
std::vector<uint8_t> EncodeDumpDirectory(const std::vector<DirEntry>& entries);
Result<std::vector<DirEntry>> DecodeDumpDirectory(
    std::span<const uint8_t> bytes);

}  // namespace bkup

#endif  // BKUP_DUMP_FORMAT_H_

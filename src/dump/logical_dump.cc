#include "src/dump/logical_dump.h"

#include <algorithm>
#include <deque>
#include <map>

#include "src/dump/dumpdates.h"
#include "src/obs/metrics.h"
#include "src/util/checksum.h"

namespace bkup {

namespace {

// Working state for one dump run.
struct DumpContext {
  const FsReader* reader;
  const LogicalDumpOptions* options;
  LogicalDumpOutput out;

  // Phase I/II results.
  Bitmap used;    // inodes in use within the subtree
  Bitmap dumped;  // inodes that will be written to the stream
  std::map<Inum, InodeData> dir_inodes;        // directories in the subtree
  std::map<Inum, std::vector<DirEntry>> dirs;  // their (filtered) entries
  std::map<Inum, Inum> parent;                 // child dir -> parent dir
  std::map<Inum, InodeData> file_inodes;       // non-directories

  TapeCatalogWriter catalog_writer{64};

  void Emit(std::span<const uint8_t> bytes) {
    out.stream.insert(out.stream.end(), bytes.begin(), bytes.end());
  }
  // Indexes the record emitted since `offset` in the offset catalog and its
  // durable journal (checkpointed at the journal's cadence).
  void Index(DumpRecordType type, Inum inum, uint64_t offset) {
    const TapeCatalog::Entry e{type, inum, offset,
                               out.stream.size() - offset};
    out.catalog.Add(e);
    catalog_writer.Add(e);
  }
  IoEvent& Event(JobPhase phase) {
    out.trace.events.emplace_back();
    out.trace.events.back().phase = phase;
    out.trace.events.back().stream_end = out.stream.size();
    return out.trace.events.back();
  }
};

bool ChangedSince(const InodeData& inode, int64_t base_time) {
  return base_time == 0 || inode.mtime >= base_time ||
         inode.ctime >= base_time;
}

// Phase I+II: walk the subtree breadth-first, filling used/dumped maps.
Status MapPhase(DumpContext* ctx) {
  const FsReader& reader = *ctx->reader;
  const LogicalDumpOptions& opt = *ctx->options;
  ctx->used.Resize(reader.max_inodes());
  ctx->dumped.Resize(reader.max_inodes());

  BKUP_ASSIGN_OR_RETURN(Inum root, reader.LookupPath(opt.subtree));
  BKUP_ASSIGN_OR_RETURN(InodeData root_inode, reader.ReadInode(root));
  if (root_inode.type != InodeType::kDirectory) {
    return NotADirectory("dump root '" + opt.subtree + "'");
  }

  std::deque<Inum> queue;
  queue.push_back(root);
  ctx->used.Set(root);
  ctx->dir_inodes[root] = root_inode;
  ctx->parent[root] = root;

  while (!queue.empty()) {
    const Inum dir = queue.front();
    queue.pop_front();
    const InodeData& dir_inode = ctx->dir_inodes[dir];

    // Trace: examining this directory reads its inode-file block and its
    // data blocks, and costs CPU per entry.
    IoEvent& event = ctx->Event(JobPhase::kMap);
    const Vbn ivbn = reader.InodeFileVbn(dir);
    if (ivbn != 0) {
      event.disk_reads.push_back(ivbn);
    }
    BKUP_ASSIGN_OR_RETURN(std::vector<uint32_t> dir_ptrs,
                          reader.PointerMap(dir_inode));
    for (uint32_t p : dir_ptrs) {
      if (p != 0) {
        event.disk_reads.push_back(p);
      }
    }

    BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                          reader.ReadDir(dir_inode));
    event.cpu.push_back({CpuCost::kMapInode, 1});
    event.cpu.push_back({CpuCost::kDirEntry, entries.size()});

    std::vector<DirEntry> kept;
    kept.reserve(entries.size());
    for (const DirEntry& e : entries) {
      if (opt.exclude && opt.exclude(e.name)) {
        continue;
      }
      kept.push_back(e);
      if (e.type == InodeType::kDirectory) {
        if (ctx->dir_inodes.count(e.inum) != 0) {
          continue;  // hard structure error, but be defensive
        }
        BKUP_ASSIGN_OR_RETURN(InodeData child, reader.ReadInode(e.inum));
        ctx->used.Set(e.inum);
        ctx->dir_inodes[e.inum] = child;
        ctx->parent[e.inum] = dir;
        queue.push_back(e.inum);
      } else {
        ctx->used.Set(e.inum);
        if (ctx->file_inodes.count(e.inum) == 0) {
          BKUP_ASSIGN_OR_RETURN(InodeData child, reader.ReadInode(e.inum));
          ctx->file_inodes[e.inum] = child;
        }
      }
    }
    ctx->dirs[dir] = std::move(kept);
  }

  // Phase I: select changed files.
  for (const auto& [inum, inode] : ctx->file_inodes) {
    if (ChangedSince(inode, opt.base_time)) {
      ctx->dumped.Set(inum);
    }
  }
  // Phase II: a directory is dumped if it changed itself or lies on the path
  // from the root to any dumped file. Walking ancestors of every dumped
  // inode marks exactly those.
  for (const auto& [inum, inode] : ctx->dir_inodes) {
    if (ChangedSince(inode, opt.base_time)) {
      ctx->dumped.Set(inum);
    }
  }
  // Collect directories that contain dumped entries (transitively).
  std::vector<Inum> to_mark;
  for (const auto& [dir, entries] : ctx->dirs) {
    for (const DirEntry& e : entries) {
      if (ctx->dumped.Test(e.inum)) {
        to_mark.push_back(dir);
        break;
      }
    }
  }
  for (Inum dir : to_mark) {
    Inum cur = dir;
    while (!ctx->dumped.Test(cur)) {
      ctx->dumped.Set(cur);
      cur = ctx->parent[cur];
    }
  }
  // A level-0 dump always includes the root directory.
  if (opt.base_time == 0) {
    ctx->dumped.Set(root);
  }
  // Phase II accounting: one more pass over the directory inodes.
  IoEvent& phase2 = ctx->Event(JobPhase::kMap);
  phase2.cpu.push_back({CpuCost::kMapInode, ctx->dir_inodes.size()});

  ctx->out.stats.inodes_in_subtree =
      static_cast<uint32_t>(ctx->used.CountOnes());
  ctx->out.stats.inodes_dumped =
      static_cast<uint32_t>(ctx->dumped.CountOnes());
  return Status::Ok();
}

Status EmitHeaders(DumpContext* ctx) {
  const LogicalDumpOptions& opt = *ctx->options;
  DumpRecord tape;
  tape.type = DumpRecordType::kTapeHeader;
  tape.level = static_cast<uint32_t>(opt.level);
  tape.dump_time = opt.dump_time;
  tape.base_time = opt.base_time;
  tape.max_inodes = ctx->reader->max_inodes();
  tape.volume_name = opt.volume_name;
  tape.snapshot_name = opt.snapshot_name;
  tape.subtree = opt.subtree;
  BKUP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, tape.Serialize());
  ctx->Emit(bytes);

  // The two inode maps, each padded to 8 bytes.
  for (const bool used_map : {true, false}) {
    const Bitmap& map = used_map ? ctx->used : ctx->dumped;
    DumpRecord rec;
    rec.type =
        used_map ? DumpRecordType::kUsedMap : DumpRecordType::kDumpedMap;
    std::vector<uint8_t> payload = map.Serialize();
    payload.resize(InodeMapStreamBytes(ctx->reader->max_inodes()), 0);
    rec.map_bytes = static_cast<uint32_t>(payload.size());
    rec.map_inode_count = ctx->reader->max_inodes();
    BKUP_ASSIGN_OR_RETURN(std::vector<uint8_t> hdr, rec.Serialize());
    ctx->Emit(hdr);
    ctx->Emit(payload);
  }
  IoEvent& event = ctx->Event(JobPhase::kMap);
  event.cpu.push_back({CpuCost::kHeaderFormat, 3});
  return Status::Ok();
}

// Phase III: dump directories in ascending inode order.
Status DumpDirectories(DumpContext* ctx) {
  for (const auto& [inum, entries] : ctx->dirs) {
    if (!ctx->dumped.Test(inum)) {
      continue;
    }
    const InodeData& inode = ctx->dir_inodes[inum];
    std::vector<uint8_t> payload = EncodeDumpDirectory(entries);

    DumpRecord rec;
    rec.type = DumpRecordType::kDirectory;
    rec.inum = inum;
    rec.attrs = DumpInodeAttrs{inode.type,  inode.mode,  inode.nlink,
                               inode.uid,   inode.gid,   inode.size,
                               inode.mtime, inode.atime, inode.ctime,
                               inode.generation};
    rec.payload_bytes = payload.size();
    rec.data_crc = Crc32c(payload);
    // Pad the payload to whole 1 KB tape blocks.
    payload.resize((payload.size() + kDumpRecordSize - 1) / kDumpRecordSize *
                       kDumpRecordSize,
                   0);
    rec.present_count =
        static_cast<uint32_t>(payload.size() / kDumpRecordSize);
    const uint64_t record_offset = ctx->out.stream.size();
    BKUP_ASSIGN_OR_RETURN(std::vector<uint8_t> hdr, rec.Serialize());
    ctx->Emit(hdr);
    ctx->Emit(payload);
    ctx->Index(DumpRecordType::kDirectory, inum, record_offset);

    IoEvent& event = ctx->Event(JobPhase::kDumpDirs);
    const Vbn ivbn = ctx->reader->InodeFileVbn(inum);
    if (ivbn != 0) {
      event.disk_reads.push_back(ivbn);
    }
    BKUP_ASSIGN_OR_RETURN(std::vector<uint32_t> ptrs,
                          ctx->reader->PointerMap(inode));
    for (uint32_t p : ptrs) {
      if (p != 0) {
        event.disk_reads.push_back(p);
      }
    }
    event.cpu.push_back({CpuCost::kHeaderFormat, 1});
    event.cpu.push_back(
        {CpuCost::kDirEntry, ctx->dirs[inum].size()});
    ctx->out.stats.dirs_dumped++;
  }
  return Status::Ok();
}

// Phase IV: dump files in ascending inode order.
Status DumpFiles(DumpContext* ctx) {
  const FsReader& reader = *ctx->reader;
  for (const auto& [inum, inode] : ctx->file_inodes) {
    if (!ctx->dumped.Test(inum)) {
      continue;
    }
    BKUP_ASSIGN_OR_RETURN(std::vector<uint32_t> ptrs,
                          reader.PointerMap(inode));
    // Short symlink targets ride in the header (like BSD's spcl); longer
    // ones travel as ordinary data blocks, which the block map already
    // covers (a symlink's target is its file content here).
    std::string symlink_target;
    if (inode.type == InodeType::kSymlink && inode.size <= kMaxNameLen) {
      std::vector<uint8_t> bytes;
      BKUP_RETURN_IF_ERROR(reader.ReadFile(inode, 0, inode.size, &bytes));
      symlink_target.assign(bytes.begin(), bytes.end());
    }

    const uint64_t total_blocks = ptrs.size();
    uint64_t fbn = 0;
    bool first = true;
    // Every file emits at least one record (even empty files), then
    // continuation records for every kMapBitsPerRecord further blocks.
    do {
      const uint32_t map_count = static_cast<uint32_t>(std::min<uint64_t>(
          kMapBitsPerRecord, total_blocks - fbn));
      DumpRecord rec;
      rec.type = first ? DumpRecordType::kInode : DumpRecordType::kAddr;
      rec.inum = inum;
      rec.attrs = DumpInodeAttrs{inode.type,  inode.mode,  inode.nlink,
                                 inode.uid,   inode.gid,   inode.size,
                                 inode.mtime, inode.atime, inode.ctime,
                                 inode.generation};
      rec.symlink_target = first ? symlink_target : "";
      rec.total_blocks = total_blocks;
      rec.first_fbn = fbn;
      rec.map_count = map_count;
      rec.block_map.assign((map_count + 7) / 8, 0);

      IoEvent& event = ctx->Event(JobPhase::kDumpFiles);
      // The inode itself is not re-read here: the mapping phase already
      // brought the inode file through the cache (the kernel dump "generates
      // its own read-ahead policy").

      // Gather the present blocks for this record.
      std::vector<uint8_t> data;
      Block block;
      uint32_t present = 0;
      for (uint32_t i = 0; i < map_count; ++i) {
        const uint32_t vbn = ptrs[fbn + i];
        if (vbn == 0) {
          ctx->out.stats.holes_skipped++;
          continue;
        }
        rec.block_map[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
        BKUP_RETURN_IF_ERROR(reader.volume()->ReadBlock(vbn, &block));
        data.insert(data.end(), block.data.begin(), block.data.end());
        event.disk_reads.push_back(vbn);
        ++present;
      }
      rec.present_count = present;
      rec.data_crc = Crc32c(data);
      const uint64_t record_offset = ctx->out.stream.size();
      BKUP_ASSIGN_OR_RETURN(std::vector<uint8_t> hdr, rec.Serialize());
      ctx->Emit(hdr);
      ctx->Emit(data);
      ctx->Index(rec.type, inum, record_offset);

      event.stream_end = ctx->out.stream.size();
      event.cpu.push_back({CpuCost::kHeaderFormat, 1});
      event.cpu.push_back({CpuCost::kLogicalBlock, present});
      ctx->out.stats.data_blocks += present;

      fbn += map_count;
      first = false;
    } while (fbn < total_blocks);
    ctx->out.stats.files_dumped++;
  }
  return Status::Ok();
}

// Readability pre-scan for skip_unreadable, between the mapping phase and
// the header emit: probe every block of every selected file and drop the
// unreadable ones from the dumped map while it has not been serialized yet,
// so the stream's maps stay consistent with what Phase IV actually writes.
Status SkipUnreadableFiles(DumpContext* ctx) {
  const FsReader& reader = *ctx->reader;
  Block block;
  for (const auto& [inum, inode] : ctx->file_inodes) {
    if (!ctx->dumped.Test(inum)) {
      continue;
    }
    bool readable = true;
    Result<std::vector<uint32_t>> ptrs = reader.PointerMap(inode);
    if (!ptrs.ok()) {
      readable = false;
    } else {
      for (uint32_t vbn : *ptrs) {
        if (vbn != 0 && !reader.volume()->ReadBlock(vbn, &block).ok()) {
          readable = false;
          break;
        }
      }
    }
    if (!readable) {
      ctx->dumped.Clear(inum);
      ctx->out.stats.files_skipped++;
    }
  }
  ctx->out.stats.inodes_dumped =
      static_cast<uint32_t>(ctx->dumped.CountOnes());
  return Status::Ok();
}

}  // namespace

Result<LogicalDumpOutput> RunLogicalDump(const FsReader& reader,
                                         const LogicalDumpOptions& options) {
  if (options.level < 0 || options.level > kMaxDumpLevel) {
    return InvalidArgument("dump level out of range");
  }
  DumpContext ctx;
  ctx.reader = &reader;
  ctx.options = &options;
  ctx.catalog_writer = TapeCatalogWriter(options.catalog_checkpoint_every);

  BKUP_RETURN_IF_ERROR(MapPhase(&ctx));
  if (options.skip_unreadable) {
    BKUP_RETURN_IF_ERROR(SkipUnreadableFiles(&ctx));
  }
  BKUP_RETURN_IF_ERROR(EmitHeaders(&ctx));
  BKUP_RETURN_IF_ERROR(DumpDirectories(&ctx));
  BKUP_RETURN_IF_ERROR(DumpFiles(&ctx));

  DumpRecord end;
  end.type = DumpRecordType::kEnd;
  BKUP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, end.Serialize());
  ctx.Emit(bytes);
  IoEvent& event = ctx.Event(JobPhase::kDumpFiles);
  event.cpu.push_back({CpuCost::kHeaderFormat, 1});

  ctx.out.stats.stream_bytes = ctx.out.stream.size();
  ctx.catalog_writer.Finish();
  ctx.out.catalog_image = ctx.catalog_writer.TakeImage();
  MetricsRegistry& metrics = MetricsRegistry::Default();
  metrics.GetCounter("catalog.entries_written")
      ->Increment(ctx.out.catalog.entries().size());
  metrics.GetCounter("dump.logical.runs")->Increment();
  metrics.GetCounter("dump.logical.files")
      ->Increment(ctx.out.stats.files_dumped);
  metrics.GetCounter("dump.logical.dirs")->Increment(ctx.out.stats.dirs_dumped);
  metrics.GetCounter("dump.logical.files_skipped")
      ->Increment(ctx.out.stats.files_skipped);
  metrics.GetCounter("dump.logical.stream_bytes")
      ->Increment(ctx.out.stats.stream_bytes);
  return std::move(ctx.out);
}

}  // namespace bkup

file(REMOVE_RECURSE
  "CMakeFiles/bench_corruption.dir/bench_corruption.cc.o"
  "CMakeFiles/bench_corruption.dir/bench_corruption.cc.o.d"
  "bench_corruption"
  "bench_corruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

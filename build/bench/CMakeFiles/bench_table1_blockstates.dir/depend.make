# Empty dependencies file for bench_table1_blockstates.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_blockstates.dir/bench_table1_blockstates.cc.o"
  "CMakeFiles/bench_table1_blockstates.dir/bench_table1_blockstates.cc.o.d"
  "bench_table1_blockstates"
  "bench_table1_blockstates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_blockstates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

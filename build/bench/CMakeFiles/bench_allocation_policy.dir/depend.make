# Empty dependencies file for bench_allocation_policy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_allocation_policy.dir/bench_allocation_policy.cc.o"
  "CMakeFiles/bench_allocation_policy.dir/bench_allocation_policy.cc.o.d"
  "bench_allocation_policy"
  "bench_allocation_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocation_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_concurrent_volumes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_volumes.dir/bench_concurrent_volumes.cc.o"
  "CMakeFiles/bench_concurrent_volumes.dir/bench_concurrent_volumes.cc.o.d"
  "bench_concurrent_volumes"
  "bench_concurrent_volumes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_volumes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fault_rates.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fault_rates.cc" "bench/CMakeFiles/bench_fault_rates.dir/bench_fault_rates.cc.o" "gcc" "bench/CMakeFiles/bench_fault_rates.dir/bench_fault_rates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backup/CMakeFiles/bkup_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bkup_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/bkup_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/dump/CMakeFiles/bkup_dump.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/bkup_image.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/bkup_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/bkup_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/bkup_block.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bkup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bkup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

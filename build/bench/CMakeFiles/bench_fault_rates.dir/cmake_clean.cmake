file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_rates.dir/bench_fault_rates.cc.o"
  "CMakeFiles/bench_fault_rates.dir/bench_fault_rates.cc.o.d"
  "bench_fault_rates"
  "bench_fault_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_nvram_ablation.dir/bench_nvram_ablation.cc.o"
  "CMakeFiles/bench_nvram_ablation.dir/bench_nvram_ablation.cc.o.d"
  "bench_nvram_ablation"
  "bench_nvram_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nvram_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbkup_raid.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bkup_raid.dir/raid_group.cc.o"
  "CMakeFiles/bkup_raid.dir/raid_group.cc.o.d"
  "CMakeFiles/bkup_raid.dir/volume.cc.o"
  "CMakeFiles/bkup_raid.dir/volume.cc.o.d"
  "libbkup_raid.a"
  "libbkup_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bkup_raid.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bkup_image.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbkup_image.a"
)

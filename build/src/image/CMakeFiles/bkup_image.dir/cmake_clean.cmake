file(REMOVE_RECURSE
  "CMakeFiles/bkup_image.dir/blockset.cc.o"
  "CMakeFiles/bkup_image.dir/blockset.cc.o.d"
  "CMakeFiles/bkup_image.dir/image_dump.cc.o"
  "CMakeFiles/bkup_image.dir/image_dump.cc.o.d"
  "CMakeFiles/bkup_image.dir/image_format.cc.o"
  "CMakeFiles/bkup_image.dir/image_format.cc.o.d"
  "CMakeFiles/bkup_image.dir/mirror.cc.o"
  "CMakeFiles/bkup_image.dir/mirror.cc.o.d"
  "libbkup_image.a"
  "libbkup_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bkup_dump.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dump/catalog.cc" "src/dump/CMakeFiles/bkup_dump.dir/catalog.cc.o" "gcc" "src/dump/CMakeFiles/bkup_dump.dir/catalog.cc.o.d"
  "/root/repo/src/dump/dumpdates.cc" "src/dump/CMakeFiles/bkup_dump.dir/dumpdates.cc.o" "gcc" "src/dump/CMakeFiles/bkup_dump.dir/dumpdates.cc.o.d"
  "/root/repo/src/dump/format.cc" "src/dump/CMakeFiles/bkup_dump.dir/format.cc.o" "gcc" "src/dump/CMakeFiles/bkup_dump.dir/format.cc.o.d"
  "/root/repo/src/dump/logical_dump.cc" "src/dump/CMakeFiles/bkup_dump.dir/logical_dump.cc.o" "gcc" "src/dump/CMakeFiles/bkup_dump.dir/logical_dump.cc.o.d"
  "/root/repo/src/dump/logical_restore.cc" "src/dump/CMakeFiles/bkup_dump.dir/logical_restore.cc.o" "gcc" "src/dump/CMakeFiles/bkup_dump.dir/logical_restore.cc.o.d"
  "/root/repo/src/dump/verify.cc" "src/dump/CMakeFiles/bkup_dump.dir/verify.cc.o" "gcc" "src/dump/CMakeFiles/bkup_dump.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fs/CMakeFiles/bkup_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/bkup_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/bkup_block.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bkup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bkup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bkup_dump.dir/catalog.cc.o"
  "CMakeFiles/bkup_dump.dir/catalog.cc.o.d"
  "CMakeFiles/bkup_dump.dir/dumpdates.cc.o"
  "CMakeFiles/bkup_dump.dir/dumpdates.cc.o.d"
  "CMakeFiles/bkup_dump.dir/format.cc.o"
  "CMakeFiles/bkup_dump.dir/format.cc.o.d"
  "CMakeFiles/bkup_dump.dir/logical_dump.cc.o"
  "CMakeFiles/bkup_dump.dir/logical_dump.cc.o.d"
  "CMakeFiles/bkup_dump.dir/logical_restore.cc.o"
  "CMakeFiles/bkup_dump.dir/logical_restore.cc.o.d"
  "CMakeFiles/bkup_dump.dir/verify.cc.o"
  "CMakeFiles/bkup_dump.dir/verify.cc.o.d"
  "libbkup_dump.a"
  "libbkup_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

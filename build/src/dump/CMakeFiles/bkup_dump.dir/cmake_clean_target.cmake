file(REMOVE_RECURSE
  "libbkup_dump.a"
)

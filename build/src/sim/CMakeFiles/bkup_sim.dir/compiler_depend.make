# Empty compiler generated dependencies file for bkup_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbkup_sim.a"
)

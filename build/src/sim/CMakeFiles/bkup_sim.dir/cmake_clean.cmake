file(REMOVE_RECURSE
  "CMakeFiles/bkup_sim.dir/environment.cc.o"
  "CMakeFiles/bkup_sim.dir/environment.cc.o.d"
  "CMakeFiles/bkup_sim.dir/resource.cc.o"
  "CMakeFiles/bkup_sim.dir/resource.cc.o.d"
  "libbkup_sim.a"
  "libbkup_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bkup_workload.dir/aging.cc.o"
  "CMakeFiles/bkup_workload.dir/aging.cc.o.d"
  "CMakeFiles/bkup_workload.dir/population.cc.o"
  "CMakeFiles/bkup_workload.dir/population.cc.o.d"
  "libbkup_workload.a"
  "libbkup_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbkup_workload.a"
)

# Empty dependencies file for bkup_workload.
# This may be replaced when dependencies are built.

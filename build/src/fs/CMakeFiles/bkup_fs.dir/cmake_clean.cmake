file(REMOVE_RECURSE
  "CMakeFiles/bkup_fs.dir/blockmap.cc.o"
  "CMakeFiles/bkup_fs.dir/blockmap.cc.o.d"
  "CMakeFiles/bkup_fs.dir/file_tree.cc.o"
  "CMakeFiles/bkup_fs.dir/file_tree.cc.o.d"
  "CMakeFiles/bkup_fs.dir/filesystem.cc.o"
  "CMakeFiles/bkup_fs.dir/filesystem.cc.o.d"
  "CMakeFiles/bkup_fs.dir/layout.cc.o"
  "CMakeFiles/bkup_fs.dir/layout.cc.o.d"
  "CMakeFiles/bkup_fs.dir/reader.cc.o"
  "CMakeFiles/bkup_fs.dir/reader.cc.o.d"
  "libbkup_fs.a"
  "libbkup_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

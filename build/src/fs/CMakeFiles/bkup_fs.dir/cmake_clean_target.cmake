file(REMOVE_RECURSE
  "libbkup_fs.a"
)

# Empty dependencies file for bkup_fs.
# This may be replaced when dependencies are built.

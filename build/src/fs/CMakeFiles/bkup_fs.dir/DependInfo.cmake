
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/blockmap.cc" "src/fs/CMakeFiles/bkup_fs.dir/blockmap.cc.o" "gcc" "src/fs/CMakeFiles/bkup_fs.dir/blockmap.cc.o.d"
  "/root/repo/src/fs/file_tree.cc" "src/fs/CMakeFiles/bkup_fs.dir/file_tree.cc.o" "gcc" "src/fs/CMakeFiles/bkup_fs.dir/file_tree.cc.o.d"
  "/root/repo/src/fs/filesystem.cc" "src/fs/CMakeFiles/bkup_fs.dir/filesystem.cc.o" "gcc" "src/fs/CMakeFiles/bkup_fs.dir/filesystem.cc.o.d"
  "/root/repo/src/fs/layout.cc" "src/fs/CMakeFiles/bkup_fs.dir/layout.cc.o" "gcc" "src/fs/CMakeFiles/bkup_fs.dir/layout.cc.o.d"
  "/root/repo/src/fs/reader.cc" "src/fs/CMakeFiles/bkup_fs.dir/reader.cc.o" "gcc" "src/fs/CMakeFiles/bkup_fs.dir/reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/raid/CMakeFiles/bkup_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/bkup_block.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bkup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bkup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bkup_block.dir/disk.cc.o"
  "CMakeFiles/bkup_block.dir/disk.cc.o.d"
  "CMakeFiles/bkup_block.dir/io_trace.cc.o"
  "CMakeFiles/bkup_block.dir/io_trace.cc.o.d"
  "CMakeFiles/bkup_block.dir/tape.cc.o"
  "CMakeFiles/bkup_block.dir/tape.cc.o.d"
  "CMakeFiles/bkup_block.dir/tape_library.cc.o"
  "CMakeFiles/bkup_block.dir/tape_library.cc.o.d"
  "libbkup_block.a"
  "libbkup_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

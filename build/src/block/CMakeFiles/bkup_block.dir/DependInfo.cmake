
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/disk.cc" "src/block/CMakeFiles/bkup_block.dir/disk.cc.o" "gcc" "src/block/CMakeFiles/bkup_block.dir/disk.cc.o.d"
  "/root/repo/src/block/io_trace.cc" "src/block/CMakeFiles/bkup_block.dir/io_trace.cc.o" "gcc" "src/block/CMakeFiles/bkup_block.dir/io_trace.cc.o.d"
  "/root/repo/src/block/tape.cc" "src/block/CMakeFiles/bkup_block.dir/tape.cc.o" "gcc" "src/block/CMakeFiles/bkup_block.dir/tape.cc.o.d"
  "/root/repo/src/block/tape_library.cc" "src/block/CMakeFiles/bkup_block.dir/tape_library.cc.o" "gcc" "src/block/CMakeFiles/bkup_block.dir/tape_library.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bkup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bkup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

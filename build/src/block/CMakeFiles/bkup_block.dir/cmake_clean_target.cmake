file(REMOVE_RECURSE
  "libbkup_block.a"
)

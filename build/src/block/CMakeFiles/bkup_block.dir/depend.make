# Empty dependencies file for bkup_block.
# This may be replaced when dependencies are built.

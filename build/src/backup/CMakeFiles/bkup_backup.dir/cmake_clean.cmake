file(REMOVE_RECURSE
  "CMakeFiles/bkup_backup.dir/charge.cc.o"
  "CMakeFiles/bkup_backup.dir/charge.cc.o.d"
  "CMakeFiles/bkup_backup.dir/filer.cc.o"
  "CMakeFiles/bkup_backup.dir/filer.cc.o.d"
  "CMakeFiles/bkup_backup.dir/jobs.cc.o"
  "CMakeFiles/bkup_backup.dir/jobs.cc.o.d"
  "CMakeFiles/bkup_backup.dir/parallel.cc.o"
  "CMakeFiles/bkup_backup.dir/parallel.cc.o.d"
  "CMakeFiles/bkup_backup.dir/report.cc.o"
  "CMakeFiles/bkup_backup.dir/report.cc.o.d"
  "CMakeFiles/bkup_backup.dir/supervisor.cc.o"
  "CMakeFiles/bkup_backup.dir/supervisor.cc.o.d"
  "libbkup_backup.a"
  "libbkup_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbkup_backup.a"
)

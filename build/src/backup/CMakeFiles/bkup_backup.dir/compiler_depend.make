# Empty compiler generated dependencies file for bkup_backup.
# This may be replaced when dependencies are built.

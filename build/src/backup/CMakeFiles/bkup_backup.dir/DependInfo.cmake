
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backup/charge.cc" "src/backup/CMakeFiles/bkup_backup.dir/charge.cc.o" "gcc" "src/backup/CMakeFiles/bkup_backup.dir/charge.cc.o.d"
  "/root/repo/src/backup/filer.cc" "src/backup/CMakeFiles/bkup_backup.dir/filer.cc.o" "gcc" "src/backup/CMakeFiles/bkup_backup.dir/filer.cc.o.d"
  "/root/repo/src/backup/jobs.cc" "src/backup/CMakeFiles/bkup_backup.dir/jobs.cc.o" "gcc" "src/backup/CMakeFiles/bkup_backup.dir/jobs.cc.o.d"
  "/root/repo/src/backup/parallel.cc" "src/backup/CMakeFiles/bkup_backup.dir/parallel.cc.o" "gcc" "src/backup/CMakeFiles/bkup_backup.dir/parallel.cc.o.d"
  "/root/repo/src/backup/report.cc" "src/backup/CMakeFiles/bkup_backup.dir/report.cc.o" "gcc" "src/backup/CMakeFiles/bkup_backup.dir/report.cc.o.d"
  "/root/repo/src/backup/supervisor.cc" "src/backup/CMakeFiles/bkup_backup.dir/supervisor.cc.o" "gcc" "src/backup/CMakeFiles/bkup_backup.dir/supervisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dump/CMakeFiles/bkup_dump.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/bkup_image.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/bkup_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/bkup_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/bkup_block.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bkup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bkup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

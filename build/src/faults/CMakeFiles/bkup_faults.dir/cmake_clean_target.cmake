file(REMOVE_RECURSE
  "libbkup_faults.a"
)

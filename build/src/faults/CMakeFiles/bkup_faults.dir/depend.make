# Empty dependencies file for bkup_faults.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bkup_faults.dir/fault_injector.cc.o"
  "CMakeFiles/bkup_faults.dir/fault_injector.cc.o.d"
  "libbkup_faults.a"
  "libbkup_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bkup_util.
# This may be replaced when dependencies are built.

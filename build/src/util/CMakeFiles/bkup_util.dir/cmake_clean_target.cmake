file(REMOVE_RECURSE
  "libbkup_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bkup_util.dir/bitmap.cc.o"
  "CMakeFiles/bkup_util.dir/bitmap.cc.o.d"
  "CMakeFiles/bkup_util.dir/checksum.cc.o"
  "CMakeFiles/bkup_util.dir/checksum.cc.o.d"
  "CMakeFiles/bkup_util.dir/logging.cc.o"
  "CMakeFiles/bkup_util.dir/logging.cc.o.d"
  "CMakeFiles/bkup_util.dir/serdes.cc.o"
  "CMakeFiles/bkup_util.dir/serdes.cc.o.d"
  "CMakeFiles/bkup_util.dir/stats.cc.o"
  "CMakeFiles/bkup_util.dir/stats.cc.o.d"
  "CMakeFiles/bkup_util.dir/status.cc.o"
  "CMakeFiles/bkup_util.dir/status.cc.o.d"
  "CMakeFiles/bkup_util.dir/units.cc.o"
  "CMakeFiles/bkup_util.dir/units.cc.o.d"
  "libbkup_util.a"
  "libbkup_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bkup_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sync_charge_test.dir/sync_charge_test.cc.o"
  "CMakeFiles/sync_charge_test.dir/sync_charge_test.cc.o.d"
  "sync_charge_test"
  "sync_charge_test.pdb"
  "sync_charge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_charge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sync_charge_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/spanning_test.dir/spanning_test.cc.o"
  "CMakeFiles/spanning_test.dir/spanning_test.cc.o.d"
  "spanning_test"
  "spanning_test.pdb"
  "spanning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spanning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for spanning_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for fs_edge_test.
# This may be replaced when dependencies are built.

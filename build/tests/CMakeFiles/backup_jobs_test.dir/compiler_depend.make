# Empty compiler generated dependencies file for backup_jobs_test.
# This may be replaced when dependencies are built.

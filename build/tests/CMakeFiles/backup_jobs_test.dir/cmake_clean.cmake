file(REMOVE_RECURSE
  "CMakeFiles/backup_jobs_test.dir/backup_jobs_test.cc.o"
  "CMakeFiles/backup_jobs_test.dir/backup_jobs_test.cc.o.d"
  "backup_jobs_test"
  "backup_jobs_test.pdb"
  "backup_jobs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_jobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

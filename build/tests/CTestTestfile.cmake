# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/raid_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/dump_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/backup_jobs_test[1]_include.cmake")
include("/root/repo/build/tests/sync_charge_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_jobs_test[1]_include.cmake")
include("/root/repo/build/tests/fs_edge_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/spanning_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")

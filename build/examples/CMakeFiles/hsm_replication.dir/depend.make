# Empty dependencies file for hsm_replication.
# This may be replaced when dependencies are built.

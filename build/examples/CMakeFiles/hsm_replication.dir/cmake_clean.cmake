file(REMOVE_RECURSE
  "CMakeFiles/hsm_replication.dir/hsm_replication.cpp.o"
  "CMakeFiles/hsm_replication.dir/hsm_replication.cpp.o.d"
  "hsm_replication"
  "hsm_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsm_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stupidity_recovery.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stupidity_recovery.dir/stupidity_recovery.cpp.o"
  "CMakeFiles/stupidity_recovery.dir/stupidity_recovery.cpp.o.d"
  "stupidity_recovery"
  "stupidity_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stupidity_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

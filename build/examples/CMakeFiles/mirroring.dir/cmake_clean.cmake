file(REMOVE_RECURSE
  "CMakeFiles/mirroring.dir/mirroring.cpp.o"
  "CMakeFiles/mirroring.dir/mirroring.cpp.o.d"
  "mirroring"
  "mirroring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mirroring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mirroring.
# This may be replaced when dependencies are built.

// Quickstart: the whole public API in one sitting.
//
// Builds a simulated filer (RAID volume + WAFL-like file system + DLT
// drive), writes some files, takes a snapshot, runs a logical backup job to
// tape, restores it onto a second filer, and verifies every byte — printing
// the simulated performance report along the way.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "src/backup/jobs.h"
#include "src/workload/population.h"

using namespace bkup;  // NOLINT: example brevity

namespace {

void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. A simulated environment and filer (CPU + NVRAM model of an F630).
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());

  // 2. A RAID-4 volume: 2 groups of 4 drives (3 data + parity each).
  VolumeGeometry geometry;
  geometry.num_raid_groups = 2;
  geometry.disks_per_group = 4;
  geometry.blocks_per_disk = 4096;  // 16 MiB per drive, scaled down
  auto volume = Volume::Create(&env, "home", geometry);
  std::printf("volume '%s': %llu blocks (%s) on %zu disks\n",
              volume->name().c_str(),
              (unsigned long long)volume->num_blocks(),
              FormatSize(volume->SizeBytes()).c_str(), volume->num_disks());

  // 3. Format and use the write-anywhere file system.
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();
  Must(fs->Mkdir("/users", 0755).status(), "mkdir /users");
  Must(fs->Mkdir("/users/norman", 0700).status(), "mkdir /users/norman");
  Inum paper = fs->Create("/users/norman/osdi99.tex", 0644).value();
  const std::string text =
      "Logical vs. Physical File System Backup\n"
      "As file systems grow in size, ensuring that data is safely stored\n"
      "becomes more and more difficult.\n";
  Must(fs->Write(paper, 0,
                 std::span(reinterpret_cast<const uint8_t*>(text.data()),
                           text.size())),
       "write");

  // A few MB of generated engineering-home-directory data.
  WorkloadParams workload;
  workload.target_bytes = 8 * kMiB;
  auto stats = PopulateFilesystem(fs.get(), workload);
  Must(stats.status(), "populate");
  std::printf("populated %u files / %u directories (%s)\n", stats->files,
              stats->directories, FormatSize(stats->bytes).c_str());

  // 4. Snapshots: instant, copy-on-write, readable while the live file
  // system keeps changing.
  Must(fs->CreateSnapshot("before-edit"), "snapshot");
  Must(fs->Write(paper, 0, std::span(reinterpret_cast<const uint8_t*>("X"),
                                     1)),
       "overwrite");
  auto snap_reader = fs->SnapshotReader("before-edit").value();
  std::vector<uint8_t> old_bytes;
  Must(snap_reader.ReadFile(
           *snap_reader.ReadInode(*snap_reader.LookupPath(
               "/users/norman/osdi99.tex")),
           0, 1, &old_bytes),
       "snapshot read");
  std::printf("live file starts with 'X'; snapshot still starts with '%c'\n",
              old_bytes[0]);
  Must(fs->DeleteSnapshot("before-edit"), "snapshot delete");

  // 5. Back the whole file system up to a simulated DLT-7000.
  Tape media("backup-tape-0", 8ull * kGiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&media);
  LogicalBackupJobResult backup;
  CountdownLatch backup_done(&env, 1);
  LogicalDumpOptions dump_options;
  dump_options.volume_name = "home";
  env.Spawn(LogicalBackupJob(&filer, fs.get(), &drive, dump_options, &backup,
                             &backup_done));
  env.Run();  // run the discrete-event simulation to completion
  Must(backup.report.status, "backup job");
  std::printf("\nbackup wrote %s to tape in %s simulated (%.2f MB/s)\n",
              FormatSize(backup.report.stream_bytes).c_str(),
              FormatDuration(backup.report.elapsed()).c_str(),
              backup.report.MBps());
  backup.report.PrintPhaseRows(stdout);

  // 6. Restore onto a brand-new filer and verify everything.
  auto spare = Volume::Create(&env, "spare", geometry);
  auto restored_fs =
      std::move(Filesystem::Format(spare.get(), &env)).value();
  drive.Rewind();
  LogicalRestoreJobResult restore;
  CountdownLatch restore_done(&env, 1);
  env.Spawn(LogicalRestoreJob(&filer, restored_fs.get(), &drive,
                              LogicalRestoreOptions{}, false, &restore,
                              &restore_done));
  env.Run();
  Must(restore.report.status, "restore job");
  std::printf("\nrestore recreated %u files in %s simulated (%.2f MB/s)\n",
              restore.restore.stats.files_restored,
              FormatDuration(restore.report.elapsed()).c_str(),
              restore.report.MBps());

  const auto want = ChecksumTree(fs->LiveReader()).value();
  const auto got = ChecksumTree(restored_fs->LiveReader()).value();
  if (want != got) {
    std::fprintf(stderr, "VERIFY FAILED: restored tree differs\n");
    return 1;
  }
  std::printf("verified: all %zu files identical after restore\n",
              want.size());
  return 0;
}

// Makeshift HSM via dump/restore — from the paper's introduction: "some
// companies are using dump/restore to implement a kind of makeshift
// Hierarchical Storage Management (HSM) system where high performance RAID
// systems nightly replicate data on lower cost backup file servers, which
// eventually backup data to tape."
//
// Tier 1: the production filer. Tier 2: a cheap file server refreshed every
// night by logical dump/restore (level 0, then incrementals applied with
// the restore symtable). Tier 3: a weekly tape cut *from tier 2*, verified
// with the dump-stream checker, so the production filer never carries the
// tape load.
//
//   ./build/examples/hsm_replication
#include <cstdio>

#include "src/backup/jobs.h"
#include "src/dump/dumpdates.h"
#include "src/dump/verify.h"
#include "src/util/random.h"
#include "src/workload/population.h"

using namespace bkup;  // NOLINT: example brevity

namespace {
void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

// One nightly cycle: dump the production tier (level `level`, incremental
// against dumpdates), apply it to the archive tier.
void Nightly(SimEnvironment* env, Filesystem* production,
             Filesystem* archive, DumpDates* dumpdates,
             RestoreSymtable* symtable, int level) {
  Must(production->CreateSnapshot("nightly"), "snapshot");
  auto reader = production->SnapshotReader("nightly").value();
  LogicalDumpOptions opt;
  opt.level = level;
  opt.volume_name = "prod";
  opt.snapshot_name = "nightly";
  opt.dump_time = env->now();
  if (level > 0) {
    auto base = dumpdates->BaseFor("prod", "/", level);
    Must(base.status(), "dumpdates base");
    opt.base_time = base->dump_time;
  }
  auto dump = RunLogicalDump(reader, opt);
  Must(dump.status(), "nightly dump");
  Must(production->DeleteSnapshot("nightly"), "snapshot delete");
  dumpdates->Record(
      {"prod", "/", level, opt.dump_time, production->generation(),
       "nightly"});

  LogicalRestoreOptions ropt;
  ropt.symtable = symtable;
  ropt.apply_moves_and_deletes = level > 0;
  auto restored = RunLogicalRestore(archive, dump->stream, ropt);
  Must(restored.status(), "apply to archive tier");
  std::printf("  night (level %d): %8s dumped, archive now has the "
              "changes (%u new/changed files, %u deleted)\n",
              level, FormatSize(dump->stats.stream_bytes).c_str(),
              restored->stats.files_restored, restored->stats.files_deleted);
}

}  // namespace

int main() {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  VolumeGeometry geometry;
  geometry.num_raid_groups = 2;
  geometry.disks_per_group = 4;
  geometry.blocks_per_disk = 4096;

  // Tier 1: production. Tier 2: the cheap archive filer.
  auto prod_volume = Volume::Create(&env, "prod", geometry);
  auto archive_volume = Volume::Create(&env, "archive", geometry);
  auto prod = std::move(Filesystem::Format(prod_volume.get(), &env)).value();
  auto archive =
      std::move(Filesystem::Format(archive_volume.get(), &env)).value();

  WorkloadParams workload;
  workload.target_bytes = 12 * kMiB;
  Must(PopulateFilesystem(prod.get(), workload).status(), "populate");
  std::printf("production filer ready (%s)\n",
              FormatSize(workload.target_bytes).c_str());

  DumpDates dumpdates;
  RestoreSymtable symtable;
  struct Sleeper {
    static Task Sleep(SimEnvironment* e, SimDuration d) {
      co_await e->Delay(d);
    }
  };
  // Let simulated time pass before the first dump so its timestamp is
  // meaningfully later than the initial data's.
  env.Spawn(Sleeper::Sleep(&env, 1 * kHour));
  env.Run();

  // Sunday: full replication.
  std::printf("\nweek of replication:\n");
  Nightly(&env, prod.get(), archive.get(), &dumpdates, &symtable, 0);

  // Monday..Thursday: small daily changes + level-1 incrementals.
  Rng rng(12);
  for (int day = 1; day <= 4; ++day) {
    // Simulate a day passing so change times sort after the base dump.
    env.Spawn(Sleeper::Sleep(&env, 24 * kHour));
    env.Run();

    for (int i = 0; i < 4; ++i) {
      const std::string path =
          "/day" + std::to_string(day) + "_doc" + std::to_string(i);
      Inum inum = prod->Create(path, 0644).value();
      std::vector<uint8_t> data((rng.Below(48) + 1) * 1024);
      rng.Fill(data);
      Must(prod->Write(inum, 0, data), "daily write");
    }
    if (day == 3) {
      Must(prod->Unlink("/day1_doc0"), "user deletes a file");
      Must(prod->Rename("/day2_doc1", "/renamed_doc"), "user renames");
    }
    Nightly(&env, prod.get(), archive.get(), &dumpdates, &symtable, 1);
  }

  // The archive tier mirrors production exactly.
  const auto prod_state = ChecksumTree(prod->LiveReader()).value();
  const auto archive_state = ChecksumTree(archive->LiveReader()).value();
  if (prod_state != archive_state) {
    std::fprintf(stderr, "VERIFY FAILED: archive tier diverged\n");
    return 1;
  }
  std::printf("\narchive tier verified: %zu files identical to production\n",
              archive_state.size());

  // Friday: tier 3 — cut the weekly tape FROM THE ARCHIVE tier and verify
  // it before trusting it ("the robustness of backup is critical").
  Tape weekly("weekly.0", 8ull * kGiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&weekly);
  LogicalBackupJobResult tape_job;
  CountdownLatch done(&env, 1);
  LogicalDumpOptions weekly_opt;
  weekly_opt.volume_name = "archive";
  env.Spawn(LogicalBackupJob(&filer, archive.get(), &drive, weekly_opt,
                             &tape_job, &done));
  env.Run();
  Must(tape_job.report.status, "weekly tape");
  auto verify = VerifyDumpStream(weekly.contents());
  Must(verify.status(), "tape verification");
  std::printf("weekly tape cut from the archive tier (production undisturbed)"
              "\n  %s\n", verify->Summary().c_str());
  return verify->readable ? 0 : 1;
}

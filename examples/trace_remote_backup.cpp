// One merged cross-node timeline for a remote backup that survives an
// outage.
//
// A remote image backup streams from the filer over a WAN link to a tape
// server's drive. A cable pull over the start of the streaming phase
// outlasts every frame's retransmit budget, so the connection dies; the
// supervisor reconnects after backoff and resumes from the acked
// watermark. With a tracer attached, both nodes' spans land in ONE
// Chrome/Perfetto trace under one trace id: the filer's job phases on the
// "filer" process row, the server's tape.write span on the "vault" row,
// per-frame flow arrows ("s"/"f") stitching the sender's tx track to the
// receiver's rx track across the link, and the post-outage continuation
// labeled with incarnation 1 — the same causal story, one picture.
//
//   ./build/examples/trace_remote_backup [--out remote_backup.trace.json]
#include <cstdio>
#include <cstring>
#include <string>

#include "src/backup/remote.h"
#include "src/faults/fault_injector.h"
#include "src/fs/filesystem.h"
#include "src/obs/trace.h"
#include "src/workload/population.h"

using namespace bkup;  // NOLINT: example brevity

namespace {
void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "remote_backup.trace.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  VolumeGeometry geometry;
  geometry.num_raid_groups = 2;
  geometry.disks_per_group = 4;
  geometry.blocks_per_disk = 2048;
  auto volume = Volume::Create(&env, "home", geometry);
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();

  WorkloadParams workload;
  workload.target_bytes = 6 * kMiB;
  workload.seed = 7;
  Must(PopulateFilesystem(fs.get(), workload).status(), "populate");

  NetLink link(&env, "wan", LinkParams{});
  TapeServer server(&env, "vault");
  TapeDrive* drive = server.AddDrive("dlt0");
  Tape media("night.0", 32 * kMiB);
  drive->LoadMedia(&media);

  // Cable pull over the start of the streaming phase (the 30 s snapshot
  // quiesce precedes it). The per-frame budget (6 retransmits x 20 ms)
  // dies inside the 3 s window; the supervisor's reconnect backoff
  // outlasts it, so the stream resumes as incarnation 1 of the same trace.
  FaultPlan plan;
  plan.seed = 11;
  plan.LinkDown("wan", 30 * kSecond, 33 * kSecond);
  FaultInjector injector(&env, plan);
  injector.Arm(&link);

  // Declared after every resource it watches (it detaches on destruction).
  Tracer tracer(&env);
  tracer.WatchResource(&filer.cpu());
  tracer.WatchResource(&drive->unit());

  SupervisionPolicy policy;
  RemoteTarget target;
  target.link = &link;
  target.server = &server;
  target.drive = drive;
  target.supervision = &policy;

  ImageBackupJobResult backup;
  CountdownLatch done(&env, 1);
  env.Spawn(RemoteImageBackupJob(&filer, fs.get(), target, ImageDumpOptions{},
                                 /*delete_snapshot_after=*/true, &backup,
                                 &done));
  env.Run();
  Must(backup.report.status, "remote image backup");

  std::printf("%-20s %10s %8.2f MB/s\n", "remote image backup",
              FormatDuration(backup.report.elapsed()).c_str(),
              backup.report.MBps());
  std::printf("link: %llu conn errors, %llu reconnects, %llu bytes resent\n",
              static_cast<unsigned long long>(backup.report.faults.link_errors),
              static_cast<unsigned long long>(
                  backup.report.faults.link_reconnects),
              static_cast<unsigned long long>(
                  backup.report.faults.link_bytes_resent));

  Must(tracer.WriteChromeJson(out_path), "writing trace");
  std::printf("\n%zu events, %zu tracks, %zu process rows -> %s\n",
              tracer.event_count(), tracer.track_count(),
              tracer.process_count(), out_path.c_str());
  std::printf("open it at https://ui.perfetto.dev or chrome://tracing\n");
  return 0;
}

// "Stupidity recovery" — the paper's name for the everyday case: "requests
// to recover a small set of files that have been accidentally deleted or
// overwritten, usually by user error."
//
// Shows the two tools WAFL gives an administrator, in order of preference:
//   1. snapshots — the user copies the file straight out of an hourly
//      snapshot, no tape involved;
//   2. single-file restore from a logical dump tape — restore's catalog
//      resolves the path with its own namei and extracts just that file,
//      which physical backup fundamentally cannot do.
//
//   ./build/examples/stupidity_recovery
#include <cstdio>

#include "src/backup/jobs.h"
#include "src/dump/logical_restore.h"
#include "src/util/random.h"
#include "src/workload/population.h"

using namespace bkup;  // NOLINT: example brevity

namespace {
void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  VolumeGeometry geometry;
  geometry.num_raid_groups = 2;
  geometry.disks_per_group = 4;
  geometry.blocks_per_disk = 4096;
  auto volume = Volume::Create(&env, "home", geometry);
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();

  // Alice's thesis, plus enough other data that a full restore would be
  // an unreasonable way to get one file back.
  Must(fs->Mkdir("/users", 0755).status(), "mkdir");
  Must(fs->Mkdir("/users/alice", 0700).status(), "mkdir");
  Inum thesis = fs->Create("/users/alice/thesis.tex", 0600).value();
  std::vector<uint8_t> thesis_bytes(300 * 1024);
  Rng(2026).Fill(thesis_bytes);
  Must(fs->Write(thesis, 0, thesis_bytes), "write thesis");
  WorkloadParams workload;
  workload.target_bytes = 12 * kMiB;
  Must(PopulateFilesystem(fs.get(), workload).status(), "populate");

  // The administrator's schedule: hourly snapshot + nightly level-0 dump.
  Must(fs->CreateSnapshot("hourly.0"), "hourly snapshot");
  Tape media("nightly.0", 8ull * kGiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&media);
  LogicalBackupJobResult backup;
  CountdownLatch done(&env, 1);
  LogicalDumpOptions dump_options;
  dump_options.snapshot_name = "nightly-dump";
  env.Spawn(LogicalBackupJob(&filer, fs.get(), &drive, dump_options, &backup,
                             &done));
  env.Run();
  Must(backup.report.status, "nightly dump");
  std::printf("nightly level-0 dump on tape: %s\n",
              FormatSize(media.size()).c_str());

  // Oops.
  Must(fs->Unlink("/users/alice/thesis.tex"), "rm thesis");
  std::printf("\n$ rm /users/alice/thesis.tex   (oops)\n");

  // --- Recovery path 1: the snapshot ("snapshots can be used as an
  // on-line backup capability allowing users to recover their own files").
  {
    auto snap = fs->SnapshotReader("hourly.0").value();
    auto inum = snap.LookupPath("/users/alice/thesis.tex");
    Must(inum.status(), "thesis in hourly.0");
    std::vector<uint8_t> bytes;
    Must(snap.ReadFile(*snap.ReadInode(*inum), 0, thesis_bytes.size(),
                       &bytes),
         "read from snapshot");
    Inum copy = fs->Create("/users/alice/thesis.tex", 0600).value();
    Must(fs->Write(copy, 0, bytes), "copy back");
    std::printf("recovered from snapshot hourly.0: %s, %s\n",
                bytes == thesis_bytes ? "bytes identical" : "MISMATCH",
                "no tape touched");
    if (bytes != thesis_bytes) {
      return 1;
    }
  }

  // Oops again — this time the snapshot has been recycled too.
  Must(fs->Unlink("/users/alice/thesis.tex"), "rm thesis again");
  Must(fs->DeleteSnapshot("hourly.0"), "snapshot rotated away");
  std::printf("\n$ rm thesis.tex; snapshots rotated   (worse oops)\n");

  // --- Recovery path 2: single-file restore from the nightly tape.
  {
    LogicalRestoreOptions options;
    options.select = {"/users/alice/thesis.tex"};
    auto restored =
        RunLogicalRestore(fs.get(), media.contents(), options);
    Must(restored.status(), "single-file restore");
    std::printf("single-file restore from tape: %u file extracted "
                "(of the whole volume on tape)\n",
                restored->stats.files_restored);
    auto inum = fs->LookupPath("/users/alice/thesis.tex");
    Must(inum.status(), "thesis back");
    std::vector<uint8_t> bytes;
    Must(fs->Read(*inum, 0, thesis_bytes.size(), &bytes), "read");
    if (bytes != thesis_bytes) {
      std::fprintf(stderr, "VERIFY FAILED\n");
      return 1;
    }
    std::printf("verified: thesis bytes identical\n");
  }

  // And the punchline from §4: a physical dump cannot do this — "restoring
  // a subset of the file system ... is not very practical. The entire file
  // system must be recreated before the individual disk blocks that make up
  // the file being requested can be identified."
  std::printf("\n(physical image tapes have no per-file structure: "
              "recovering one file would mean restoring the entire %s "
              "volume first)\n",
              FormatSize(volume->SizeBytes()).c_str());
  return 0;
}

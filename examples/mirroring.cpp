// Volume mirroring with incremental image transfers — the paper's §6:
// "The image dump/restore technology also has potential application to
// remote mirroring and replication of volumes."
//
// A primary filer replicates to a warm standby volume: the first Sync()
// ships a full image, later Syncs ship only the snapshot-to-snapshot block
// delta (Table 1's B − A). After a primary failure the standby mounts with
// the data as of the last sync.
//
//   ./build/examples/mirroring
#include <cstdio>

#include "src/image/mirror.h"
#include "src/util/random.h"
#include "src/workload/population.h"

using namespace bkup;  // NOLINT: example brevity

namespace {
void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  SimEnvironment env;
  VolumeGeometry geometry;
  geometry.num_raid_groups = 2;
  geometry.disks_per_group = 4;
  geometry.blocks_per_disk = 4096;
  auto primary_volume = Volume::Create(&env, "primary", geometry);
  auto standby_volume = Volume::Create(&env, "standby", geometry);
  auto fs = std::move(Filesystem::Format(primary_volume.get(), &env)).value();

  WorkloadParams workload;
  workload.target_bytes = 16 * kMiB;
  Must(PopulateFilesystem(fs.get(), workload).status(), "populate");

  VolumeMirror mirror(fs.get(), standby_volume.get());

  // Initial seeding: a full image crosses the (simulated) wire.
  auto sent = mirror.Sync();
  Must(sent.status(), "initial sync");
  std::printf("sync 1 (seed):   %12s transferred\n",
              FormatSize(*sent).c_str());

  // Steady state: small nightly deltas.
  Rng rng(9);
  for (int night = 2; night <= 5; ++night) {
    // The day's work: a few new files and edits.
    for (int i = 0; i < 5; ++i) {
      const std::string path = "/day" + std::to_string(night) + "_file" +
                               std::to_string(i);
      Inum inum = fs->Create(path, 0644).value();
      std::vector<uint8_t> data((rng.Below(64) + 1) * 1024);
      rng.Fill(data);
      Must(fs->Write(inum, 0, data), "daily write");
    }
    sent = mirror.Sync();
    Must(sent.status(), "incremental sync");
    std::printf("sync %d (delta):  %12s transferred\n", night,
                FormatSize(*sent).c_str());
  }
  std::printf("mirror is consistent with snapshot '%s' after %llu syncs\n",
              mirror.last_transfer_snapshot().c_str(),
              (unsigned long long)mirror.syncs_completed());

  // Primary fails; promote the standby.
  const auto primary_state = ChecksumTree(fs->LiveReader()).value();
  fs.reset();
  std::printf("\n*** primary filer lost — promoting the standby ***\n");
  auto standby = Filesystem::Mount(standby_volume.get(), &env);
  Must(standby.status(), "mount standby");
  const auto standby_state = ChecksumTree((*standby)->LiveReader()).value();
  if (standby_state != primary_state) {
    std::fprintf(stderr, "VERIFY FAILED: standby differs from primary\n");
    return 1;
  }
  std::printf("standby serves all %zu files, bit-identical to the primary "
              "as of the last sync\n",
              standby_state.size());
  return 0;
}

// Disaster recovery with physical (image) backup — the paper's §4 scenario:
// "A disaster recovery solution involves a complete restore of data onto
// new, or newly initialized media."
//
// A filer with live data and historical snapshots is image-dumped to tape;
// every disk in the volume is then destroyed; a replacement shelf of blank
// drives is restored from tape through the RAID layer, and the filer boots
// with the live file system AND all its snapshots intact.
//
//   ./build/examples/disaster_recovery
#include <cstdio>

#include "src/backup/jobs.h"
#include "src/workload/population.h"

using namespace bkup;  // NOLINT: example brevity

namespace {
void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  VolumeGeometry geometry;
  geometry.num_raid_groups = 2;
  geometry.disks_per_group = 5;
  geometry.blocks_per_disk = 4096;
  auto volume = Volume::Create(&env, "home", geometry);
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();

  // Build history: data, a snapshot, more data, another snapshot.
  WorkloadParams workload;
  workload.target_bytes = 10 * kMiB;
  workload.seed = 1;
  Must(PopulateFilesystem(fs.get(), workload).status(), "populate v1");
  Must(fs->CreateSnapshot("monday"), "snapshot monday");
  Inum report = fs->Create("/quarterly-report.txt", 0644).value();
  const char* line = "Q1 numbers look great.\n";
  Must(fs->Write(report, 0,
                 std::span(reinterpret_cast<const uint8_t*>(line),
                           strlen(line))),
       "write report");
  Must(fs->CreateSnapshot("tuesday"), "snapshot tuesday");
  const auto before = ChecksumTree(fs->LiveReader()).value();
  std::printf("source filer: %zu files, snapshots:", before.size());
  for (const auto& s : fs->ListSnapshots()) {
    std::printf(" %s", s.name.c_str());
  }
  std::printf("\n");

  // Full image dump to tape (block-order, file system bypassed).
  Tape media("dr-tape", 8ull * kGiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&media);
  ImageBackupJobResult backup;
  CountdownLatch done(&env, 1);
  env.Spawn(ImageBackupJob(&filer, fs.get(), &drive, ImageDumpOptions{},
                           /*delete_snapshot_after=*/true, &backup, &done));
  env.Run();
  Must(backup.report.status, "image backup");
  std::printf("image dump: %llu blocks (%s) in %s simulated at %.2f MB/s, "
              "CPU %.1f%%\n",
              (unsigned long long)backup.dump.stats.blocks_dumped,
              FormatSize(backup.report.stream_bytes).c_str(),
              FormatDuration(backup.report.StreamElapsed()).c_str(),
              backup.report.MBps(),
              backup.report.phase(JobPhase::kDumpBlocks).CpuUtilization() *
                  100);

  // DISASTER: every drive in the volume dies.
  fs.reset();  // the filer goes down with its disks
  for (const auto& disk : volume->disks()) {
    disk->Fail();
  }
  std::printf("\n*** disaster: all %zu drives failed ***\n",
              volume->num_disks());
  // Field service installs blank replacement drives.
  for (const auto& disk : volume->disks()) {
    disk->ReplaceWithBlank();
  }
  if (Filesystem::Mount(volume.get(), &env).ok()) {
    std::fprintf(stderr, "blank shelf should not mount!\n");
    return 1;
  }
  std::printf("replacement shelf installed (blank, unmountable)\n");

  // Restore straight through RAID and boot.
  drive.Rewind();
  ImageRestoreJobResult restore;
  CountdownLatch rdone(&env, 1);
  env.Spawn(ImageRestoreJob(&filer, volume.get(), &drive, &restore, &rdone));
  env.Run();
  Must(restore.report.status, "image restore");
  std::printf("image restore: %llu blocks in %s simulated at %.2f MB/s\n",
              (unsigned long long)restore.restore.stats.blocks_restored,
              FormatDuration(restore.report.elapsed()).c_str(),
              restore.report.MBps());

  auto recovered = Filesystem::Mount(volume.get(), &env);
  Must(recovered.status(), "mount after restore");
  const auto after = ChecksumTree((*recovered)->LiveReader()).value();
  if (after != before) {
    std::fprintf(stderr, "VERIFY FAILED: recovered tree differs\n");
    return 1;
  }
  std::printf("verified: %zu files identical after disaster recovery\n",
              after.size());

  // "The system you restore looks just like the system you dumped,
  // snapshots and all."
  auto monday = (*recovered)->SnapshotReader("monday");
  Must(monday.status(), "monday snapshot on recovered filer");
  if (monday->LookupPath("/quarterly-report.txt").ok()) {
    std::fprintf(stderr, "monday snapshot should predate the report!\n");
    return 1;
  }
  auto tuesday = (*recovered)->SnapshotReader("tuesday");
  Must(tuesday.status(), "tuesday snapshot on recovered filer");
  Must(tuesday->LookupPath("/quarterly-report.txt").status(),
       "report in tuesday snapshot");
  std::printf("snapshots survived the disaster: monday (pre-report) and "
              "tuesday (with report)\n");
  return 0;
}

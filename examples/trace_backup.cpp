// Exporting a backup run as a Perfetto/chrome://tracing timeline.
//
// A tracer is attached to the simulation; a logical backup and a physical
// (image) backup of the same volume then run back to back, each to its own
// DLT drive. Every simulated resource — the filer CPU, every disk arm, both
// tape drive units — is watched as a counter track, each job's phases appear
// as spans on their own track, and tape repositions / fault recoveries show
// up as instant events. The result is written as Chrome trace-event JSON:
// open it at https://ui.perfetto.dev or chrome://tracing and the bottleneck
// structure of both strategies is a picture instead of a table.
//
//   ./build/examples/trace_backup [--out backup.trace.json]
#include <cstdio>
#include <cstring>
#include <string>

#include "src/backup/jobs.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workload/population.h"

using namespace bkup;  // NOLINT: example brevity

namespace {
void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "backup.trace.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  VolumeGeometry geometry;
  geometry.num_raid_groups = 2;
  geometry.disks_per_group = 5;
  geometry.blocks_per_disk = 4096;
  auto volume = Volume::Create(&env, "home", geometry);
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();

  WorkloadParams workload;
  workload.target_bytes = 24 * kMiB;
  workload.seed = 7;
  Must(PopulateFilesystem(fs.get(), workload).status(), "populate");

  Tape tape0("tape0", 8ull * kGiB);
  Tape tape1("tape1", 8ull * kGiB);
  TapeDrive drive0(&env, "dlt0");
  TapeDrive drive1(&env, "dlt1");
  drive0.LoadMedia(&tape0);
  drive1.LoadMedia(&tape1);

  // Declared after every resource it watches: the tracer detaches itself on
  // destruction, so it must go first. Counter tracks: one per resource.
  Tracer tracer(&env);
  tracer.WatchResource(&filer.cpu());
  for (const auto& disk : volume->disks()) {
    tracer.WatchResource(&disk->arm());
  }
  tracer.WatchResource(&drive0.unit());
  tracer.WatchResource(&drive1.unit());

  // Logical backup to drive 0.
  LogicalBackupJobResult logical;
  {
    CountdownLatch done(&env, 1);
    LogicalDumpOptions options;
    options.volume_name = "home";
    env.Spawn(
        LogicalBackupJob(&filer, fs.get(), &drive0, options, &logical, &done));
    env.Run();
    Must(logical.report.status, "logical backup");
  }

  // Physical (image) backup of the same volume to drive 1.
  ImageBackupJobResult image;
  {
    CountdownLatch done(&env, 1);
    env.Spawn(ImageBackupJob(&filer, fs.get(), &drive1, ImageDumpOptions{},
                             /*delete_snapshot_after=*/true, &image, &done));
    env.Run();
    Must(image.report.status, "physical backup");
  }

  std::printf("%-18s %10s %8.2f MB/s\n", "logical backup",
              FormatDuration(logical.report.elapsed()).c_str(),
              logical.report.MBps());
  std::printf("%-18s %10s %8.2f MB/s\n", "physical backup",
              FormatDuration(image.report.elapsed()).c_str(),
              image.report.MBps());

  Must(tracer.WriteChromeJson(out_path), "writing trace");
  std::printf("\n%zu events on %zu tracks -> %s\n", tracer.event_count(),
              tracer.track_count(), out_path.c_str());
  std::printf("open it at https://ui.perfetto.dev or chrome://tracing\n");

  // The always-on metrics accumulated along the way, for comparison.
  std::printf("\nmetrics: %zu series registered\n",
              MetricsRegistry::Default().size());
  return 0;
}
